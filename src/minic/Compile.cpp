//===- minic/Compile.cpp - C subset to tree IR -----------------------------===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Single-pass, syntax-directed translation from the C subset to tree IR,
/// in the style of lcc: statements append trees to the current function's
/// forest; expressions build trees; calls, short-circuit operators and
/// ?: lower through explicit temporaries and labels.
///
//===----------------------------------------------------------------------===//

#include "minic/Compile.h"

#include "minic/Lexer.h"
#include "minic/Types.h"
#include "support/Support.h"

#include <cassert>
#include <map>
#include <optional>

using namespace ccomp;
using namespace ccomp::minic;
using ir::Op;
using ir::Tree;
using ir::TypeSuffix;

namespace {

/// An expression value during translation.
///
/// LValue: T is the ADDRESS of the object (type: pointer to Ty).
/// IsCmp:  T is a comparison tree (EQ..GE) whose label literal is still
///         unset; it must be consumed by a branch or lowered to 0/1.
/// BareCall: T is a CALL tree not yet emitted; usable as a statement or
///         materialized into a temporary when its value is needed.
struct Value {
  Tree *T = nullptr;
  TypeId Ty = 0;
  bool LValue = false;
  bool IsCmp = false;
  bool BareCall = false;
};

/// A named entity in some scope.
struct Sym {
  enum KindT { KGlobal, KFunc, KLocal, KStackParam, KEnum } Kind = KGlobal;
  std::string Name;
  TypeId Ty = 0;
  int64_t Off = 0;      ///< Local frame offset / stack-param offset / enum
                        ///< constant value.
  uint32_t SymIdx = 0;  ///< Module symbol index (globals and functions).
};

class Compiler {
public:
  explicit Compiler(const std::string &Source) : Lex(Source) {
    M = std::make_unique<ir::Module>();
    Scopes.emplace_back(); // File scope.
  }

  CompileResult run();

private:
  //===--------------------------------------------------------------------===
  // Diagnostics
  //===--------------------------------------------------------------------===

  void error(const std::string &Msg) {
    if (!Failed) {
      Err = "line " + std::to_string(Lex.line()) + ": " + Msg;
      Failed = true;
    }
  }

  bool expect(Tok T) {
    if (Lex.accept(T))
      return true;
    error(std::string("expected '") + tokName(T) + "', found '" +
          tokName(Lex.kind()) + "'");
    return false;
  }

  //===--------------------------------------------------------------------===
  // Scopes and symbols
  //===--------------------------------------------------------------------===

  void pushScope() { Scopes.emplace_back(); }
  void popScope() { Scopes.pop_back(); }

  Sym *lookup(const std::string &Name) {
    for (size_t I = Scopes.size(); I-- > 0;)
      for (Sym &S : Scopes[I])
        if (S.Name == Name)
          return &S;
    return nullptr;
  }

  Sym &declare(Sym S) {
    Scopes.back().push_back(std::move(S));
    return Scopes.back().back();
  }

  //===--------------------------------------------------------------------===
  // Tree construction helpers
  //===--------------------------------------------------------------------===

  Tree *newTree(Op O, TypeSuffix S, int64_t Lit = 0, Tree *K0 = nullptr,
                Tree *K1 = nullptr) {
    assert(F && "tree construction outside a function");
    return F->newTree(O, S, Lit, K0, K1);
  }

  Tree *cloneTree(const Tree *T) {
    Tree *C = newTree(T->O, T->Suffix, T->Literal);
    C->NKids = T->NKids;
    for (unsigned I = 0; I != T->NKids; ++I)
      C->Kids[I] = cloneTree(T->Kids[I]);
    return C;
  }

  Tree *tcnst(int64_t V, TypeSuffix S = TypeSuffix::I) {
    return newTree(Op::CNST, S, V);
  }

  /// Builds a binary tree with light constant folding.
  Tree *tbin(Op O, TypeSuffix S, Tree *L, Tree *R) {
    if (L->O == Op::CNST && R->O == Op::CNST) {
      std::optional<int64_t> V = foldBin(O, S, L->Literal, R->Literal);
      if (V)
        return tcnst(*V, S == TypeSuffix::P ? TypeSuffix::I : S);
    }
    // x + 0, x - 0, x * 1 simplifications keep the trees lcc-like.
    if (R->O == Op::CNST) {
      if ((O == Op::ADD || O == Op::SUB || O == Op::LSH || O == Op::RSH ||
           O == Op::BOR || O == Op::BXOR) &&
          R->Literal == 0)
        return L;
      if ((O == Op::MUL || O == Op::DIV) && R->Literal == 1)
        return L;
    }
    if (L->O == Op::CNST && O == Op::ADD && L->Literal == 0)
      return R;
    Tree *T = newTree(O, S, 0, L, R);
    return T;
  }

  static std::optional<int64_t> foldBin(Op O, TypeSuffix S, int64_t A,
                                        int64_t B) {
    bool U = S == TypeSuffix::U;
    auto AI = static_cast<int32_t>(A);
    auto BI = static_cast<int32_t>(B);
    auto AU = static_cast<uint32_t>(A);
    auto BU = static_cast<uint32_t>(B);
    switch (O) {
    case Op::ADD: return static_cast<int32_t>(AU + BU);
    case Op::SUB: return static_cast<int32_t>(AU - BU);
    case Op::MUL: return static_cast<int32_t>(AU * BU);
    case Op::DIV:
      if (BU == 0 || (!U && AI == INT32_MIN && BI == -1))
        return std::nullopt;
      return U ? static_cast<int32_t>(AU / BU) : AI / BI;
    case Op::MOD:
      if (BU == 0 || (!U && AI == INT32_MIN && BI == -1))
        return std::nullopt;
      return U ? static_cast<int32_t>(AU % BU) : AI % BI;
    case Op::BAND: return static_cast<int32_t>(AU & BU);
    case Op::BOR:  return static_cast<int32_t>(AU | BU);
    case Op::BXOR: return static_cast<int32_t>(AU ^ BU);
    case Op::LSH:  return static_cast<int32_t>(AU << (BU & 31));
    case Op::RSH:
      return U ? static_cast<int32_t>(AU >> (BU & 31)) : (AI >> (BU & 31));
    default:
      return std::nullopt;
    }
  }

  void emit(Tree *T) { F->Forest.push_back(T); }

  uint32_t newLabel() { return F->NumLabels++; }
  void placeLabel(uint32_t L) {
    emit(newTree(Op::LABEL, TypeSuffix::V, L));
  }
  void emitJump(uint32_t L) {
    emit(newTree(Op::JUMP, TypeSuffix::V, L));
  }

  //===--------------------------------------------------------------------===
  // Frame and temporaries
  //===--------------------------------------------------------------------===

  uint32_t allocLocal(uint32_t Size, uint32_t Align) {
    uint32_t Off = (F->FrameSize + Align - 1) & ~(Align - 1);
    F->FrameSize = Off + Size;
    return Off;
  }

  /// Allocates a scalar temporary; returns its frame offset.
  uint32_t newTemp() { return allocLocal(4, 4); }

  Tree *taddrl(int64_t Off) { return newTree(Op::ADDRL, TypeSuffix::P, Off); }

  Value tempLValue(uint32_t Off, TypeId Ty) {
    return {taddrl(Off), Ty, /*LValue=*/true, false, false};
  }

  //===--------------------------------------------------------------------===
  // Types and suffixes
  //===--------------------------------------------------------------------===

  /// Suffix used for loads/stores of an object of type \p Ty.
  TypeSuffix memSuffix(TypeId Ty) {
    const Type &T = TT.get(Ty);
    switch (T.K) {
    case TyKind::I8:
    case TyKind::U8: return TypeSuffix::C;
    case TyKind::I16:
    case TyKind::U16: return TypeSuffix::S;
    case TyKind::I32: return TypeSuffix::I;
    case TyKind::U32: return TypeSuffix::U;
    case TyKind::Ptr: return TypeSuffix::P;
    default:
      error("cannot load/store type " + TT.name(Ty));
      return TypeSuffix::I;
    }
  }

  /// Suffix used for computation on a (promoted) value of type \p Ty.
  TypeSuffix valSuffix(TypeId Ty) {
    if (TT.isPointer(Ty))
      return TypeSuffix::P;
    return TT.isUnsigned(Ty) ? TypeSuffix::U : TypeSuffix::I;
  }

  /// C integer promotion: sub-word integer types compute as int.
  TypeId promote(TypeId Ty) {
    const Type &T = TT.get(Ty);
    switch (T.K) {
    case TyKind::I8:
    case TyKind::U8:
    case TyKind::I16:
    case TyKind::U16: return TT.I32Ty;
    default: return Ty;
    }
  }

  //===--------------------------------------------------------------------===
  // Value manipulation
  //===--------------------------------------------------------------------===

  /// Lowers a pending comparison to a 0/1 value through a temporary.
  Value cmpToValue(Value V) {
    assert(V.IsCmp);
    uint32_t T = newTemp();
    uint32_t LTrue = newLabel();
    emit(newTree(Op::ASGN, TypeSuffix::I, 0, taddrl(T), tcnst(1)));
    V.T->Literal = static_cast<int64_t>(LTrue); // Branch if cmp true.
    emit(V.T);
    emit(newTree(Op::ASGN, TypeSuffix::I, 0, taddrl(T), tcnst(0)));
    placeLabel(LTrue);
    return {newTree(Op::INDIR, TypeSuffix::I, 0, taddrl(T)), TT.I32Ty,
            false, false, false};
  }

  /// Materializes a not-yet-emitted CALL into a temporary.
  Value materializeCall(Value V) {
    assert(V.BareCall);
    if (TT.isVoid(V.Ty)) {
      error("void value used in expression");
      emit(V.T);
      return {tcnst(0), TT.I32Ty, false, false, false};
    }
    uint32_t Tmp = newTemp();
    TypeSuffix S = memSuffix(promote(V.Ty));
    emit(newTree(Op::ASGN, S, 0, taddrl(Tmp), V.T));
    return {newTree(Op::INDIR, S, 0, taddrl(Tmp)), promote(V.Ty), false,
            false, false};
  }

  /// Converts \p V to a plain rvalue: loads lvalues (with array decay),
  /// materializes calls and lowers comparisons. Struct lvalues stay as
  /// addresses (they only appear in assignment and member selection).
  Value rvalue(Value V) {
    if (V.IsCmp)
      return cmpToValue(V);
    if (V.BareCall)
      return materializeCall(V);
    if (!V.LValue)
      return V;
    if (TT.isArray(V.Ty)) {
      // Array decays to pointer to the first element.
      return {V.T, TT.pointerTo(TT.get(V.Ty).Elem), false, false, false};
    }
    if (TT.isStruct(V.Ty))
      return V; // Struct values are manipulated by address.
    if (TT.isFunc(V.Ty))
      return {V.T, TT.pointerTo(V.Ty), false, false, false};
    TypeSuffix S = memSuffix(V.Ty);
    Tree *Load = newTree(Op::INDIR, S, 0, V.T);
    TypeId Ty = promote(V.Ty);
    // Sub-word loads sign-extend; unsigned sub-word types need masking.
    if (TT.get(V.Ty).K == TyKind::U8)
      Load = newTree(Op::ZXT8, TypeSuffix::I, 0, Load);
    else if (TT.get(V.Ty).K == TyKind::U16)
      Load = newTree(Op::ZXT16, TypeSuffix::I, 0, Load);
    return {Load, Ty, false, false, false};
  }

  /// Returns an lvalue whose address may be cloned repeatedly without
  /// duplicating side effects (spilling the address to a temporary when
  /// the address expression is not a leaf).
  Value reusableAddr(Value LV) {
    assert(LV.LValue);
    Op O = LV.T->O;
    if (O == Op::ADDRL || O == Op::ADDRF || O == Op::ADDRG)
      return LV;
    uint32_t Tmp = newTemp();
    emit(newTree(Op::ASGN, TypeSuffix::P, 0, taddrl(Tmp), LV.T));
    LV.T = newTree(Op::INDIR, TypeSuffix::P, 0, taddrl(Tmp));
    return LV;
  }

  /// Fresh copy of a reusable lvalue's address tree.
  Tree *addrCopy(const Value &LV) { return cloneTree(LV.T); }

  /// Emits a store of rvalue \p R into lvalue address \p Addr of type Ty.
  void emitStore(Tree *Addr, TypeId Ty, Value R) {
    if (TT.isStruct(Ty)) {
      // Struct assignment: block copy of the right operand's address.
      emit(newTree(Op::ASGNB, TypeSuffix::B, TT.sizeOf(Ty), Addr, R.T));
      return;
    }
    emit(newTree(Op::ASGN, memSuffix(Ty), 0, Addr, R.T));
  }

  //===--------------------------------------------------------------------===
  // Branch emission
  //===--------------------------------------------------------------------===

  static Op invertCmp(Op O) {
    switch (O) {
    case Op::EQ: return Op::NE;
    case Op::NE: return Op::EQ;
    case Op::LT: return Op::GE;
    case Op::GE: return Op::LT;
    case Op::LE: return Op::GT;
    case Op::GT: return Op::LE;
    default: ccomp_unreachable("not a comparison");
    }
  }

  /// Emits "branch to L if V is true/false". Consumes V.
  void emitBranch(Value V, uint32_t L, bool IfTrue) {
    if (V.IsCmp) {
      if (!IfTrue)
        V.T->O = invertCmp(V.T->O);
      V.T->Literal = static_cast<int64_t>(L);
      emit(V.T);
      return;
    }
    Value R = rvalue(V);
    if (R.T->O == Op::CNST) {
      bool Truth = R.T->Literal != 0;
      if (Truth == IfTrue)
        emitJump(L);
      return;
    }
    TypeSuffix S = valSuffix(R.Ty) == TypeSuffix::P ? TypeSuffix::U
                                                    : valSuffix(R.Ty);
    emit(newTree(IfTrue ? Op::NE : Op::EQ, S, L, R.T, tcnst(0)));
  }

  //===--------------------------------------------------------------------===
  // Grammar: expressions
  //===--------------------------------------------------------------------===

  Value parseExpr();           // Comma expression.
  Value parseAssign();
  Value parseConditional();
  Value parseLogicalOr();
  Value parseLogicalAnd();
  Value parseBinary(int MinPrec);
  Value parseUnary();
  Value parsePostfix();
  Value parsePrimary();
  Value parseCall(Sym *FnSym);
  Value combine(Tok K, Value L, Value R);

  /// Statement-level condition parsing producing direct branches.
  void parseCondFalse(uint32_t FalseL, Tok Stop);
  void parseCondTrue(uint32_t TrueL, Tok Stop);
  bool condNeedsValueLowering(Tok Stop);

  //===--------------------------------------------------------------------===
  // Grammar: declarations and statements
  //===--------------------------------------------------------------------===

  bool parseTopLevel();
  bool parseEnumDef();
  std::optional<TypeId> tryParseBaseType();
  bool startsType();
  TypeId parseStructSpecifier();
  struct Declarator {
    std::string Name;
    TypeId Ty = 0;
    bool IsFunc = false;
    std::vector<std::pair<std::string, TypeId>> Params;
  };
  bool parseDeclarator(TypeId Base, Declarator &D);
  bool parseFunctionDef(const Declarator &D);
  void parseGlobalInit(const Declarator &D, uint32_t SymIdx);
  void parseStatement();
  void parseBlock();
  void parseLocalDecl();
  int64_t parseConstExpr();

  //===--------------------------------------------------------------------===
  // State
  //===--------------------------------------------------------------------===

  Lexer Lex;
  TypeTable TT;
  std::unique_ptr<ir::Module> M;
  ir::Function *F = nullptr;
  TypeId RetTy = 0;

  std::string Err;
  bool Failed = false;

  std::vector<std::vector<Sym>> Scopes;
  std::vector<uint32_t> BreakLabels;
  std::vector<uint32_t> ContinueLabels;

  struct SwitchCtx {
    uint32_t EndL = 0;
    uint32_t DispatchL = 0;
    uint32_t TempOff = 0;
    uint32_t DefaultL = ~0u;
    std::vector<std::pair<int64_t, uint32_t>> Cases;
  };
  std::vector<SwitchCtx> Switches;

  struct NamedLabel {
    uint32_t Id = 0;
    bool Defined = false;
  };
  std::map<std::string, NamedLabel> GotoLabels;

  std::map<std::string, uint32_t> StringPool; ///< Literal -> symbol index.
  unsigned StrCounter = 0;
};

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

bool Compiler::startsType() {
  switch (Lex.kind()) {
  case Tok::KwVoid:
  case Tok::KwChar:
  case Tok::KwShort:
  case Tok::KwInt:
  case Tok::KwLong:
  case Tok::KwUnsigned:
  case Tok::KwSigned:
  case Tok::KwStruct:
  case Tok::KwConst:
    return true;
  default:
    return false;
  }
}

std::optional<TypeId> Compiler::tryParseBaseType() {
  while (Lex.accept(Tok::KwConst))
    ; // const is accepted and ignored.
  if (Lex.kind() == Tok::KwStruct)
    return parseStructSpecifier();

  bool SawUnsigned = false, SawSigned = false, SawAny = false;
  TyKind Base = TyKind::I32;
  bool SawVoid = false;
  for (;;) {
    switch (Lex.kind()) {
    case Tok::KwUnsigned: SawUnsigned = true; SawAny = true; break;
    case Tok::KwSigned: SawSigned = true; SawAny = true; break;
    case Tok::KwVoid: SawVoid = true; SawAny = true; break;
    case Tok::KwChar: Base = TyKind::I8; SawAny = true; break;
    case Tok::KwShort: Base = TyKind::I16; SawAny = true; break;
    case Tok::KwInt:
    case Tok::KwLong: Base = TyKind::I32; SawAny = true; break;
    case Tok::KwConst: break; // Ignored.
    default:
      if (!SawAny)
        return std::nullopt;
      if (SawVoid)
        return TT.VoidTy;
      (void)SawSigned;
      switch (Base) {
      case TyKind::I8: return SawUnsigned ? TT.U8Ty : TT.I8Ty;
      case TyKind::I16: return SawUnsigned ? TT.U16Ty : TT.I16Ty;
      default: return SawUnsigned ? TT.U32Ty : TT.I32Ty;
      }
    }
    Lex.next();
  }
}

TypeId Compiler::parseStructSpecifier() {
  expect(Tok::KwStruct);
  std::string Tag;
  if (Lex.kind() == Tok::Ident) {
    Tag = Lex.text();
    Lex.next();
  }
  uint32_t Idx = TT.structByName(Tag.empty()
                                     ? "$anon" + std::to_string(Lex.line())
                                     : Tag);
  if (Lex.accept(Tok::LBrace)) {
    StructInfo &SI = TT.structInfo(Idx);
    if (SI.Complete) {
      error("struct " + Tag + " redefined");
      return TT.structType(Idx);
    }
    uint32_t Off = 0, MaxAlign = 1;
    while (!Lex.accept(Tok::RBrace)) {
      std::optional<TypeId> Base = tryParseBaseType();
      if (!Base) {
        error("expected field type in struct " + Tag);
        return TT.structType(Idx);
      }
      for (;;) {
        Declarator D;
        if (!parseDeclarator(*Base, D))
          return TT.structType(Idx);
        if (D.Name.empty() || D.IsFunc) {
          error("bad struct field");
          return TT.structType(Idx);
        }
        uint32_t A = TT.alignOf(D.Ty);
        uint32_t Sz = TT.sizeOf(D.Ty);
        Off = (Off + A - 1) & ~(A - 1);
        TT.structInfo(Idx).Fields.push_back({D.Name, D.Ty, Off});
        Off += Sz;
        MaxAlign = std::max(MaxAlign, A);
        if (!Lex.accept(Tok::Comma))
          break;
      }
      if (!expect(Tok::Semi))
        return TT.structType(Idx);
      if (Failed)
        return TT.structType(Idx);
    }
    StructInfo &SI2 = TT.structInfo(Idx);
    SI2.Align = MaxAlign;
    SI2.Size = (Off + MaxAlign - 1) & ~(MaxAlign - 1);
    if (SI2.Size == 0)
      SI2.Size = MaxAlign; // Empty structs still occupy storage.
    SI2.Complete = true;
  }
  return TT.structType(Idx);
}

bool Compiler::parseDeclarator(TypeId Base, Declarator &D) {
  TypeId Ty = Base;
  while (Lex.accept(Tok::Star)) {
    while (Lex.accept(Tok::KwConst))
      ;
    Ty = TT.pointerTo(Ty);
  }
  if (Lex.kind() == Tok::Ident) {
    D.Name = Lex.text();
    Lex.next();
  }
  if (Lex.accept(Tok::LParen)) {
    // Function declarator.
    D.IsFunc = true;
    std::vector<TypeId> ParamTys;
    if (!Lex.accept(Tok::RParen)) {
      if (Lex.kind() == Tok::KwVoid) {
        Lexer::State S = Lex.save();
        Lex.next();
        if (Lex.accept(Tok::RParen)) {
          D.Ty = TT.functionOf(Ty, {});
          return true;
        }
        Lex.restore(S);
      }
      for (;;) {
        std::optional<TypeId> PBase = tryParseBaseType();
        if (!PBase) {
          error("expected parameter type");
          return false;
        }
        Declarator PD;
        if (!parseDeclarator(*PBase, PD))
          return false;
        TypeId PTy = PD.Ty;
        if (TT.isArray(PTy)) // Array parameters decay.
          PTy = TT.pointerTo(TT.get(PTy).Elem);
        if (TT.isStruct(PTy)) {
          error("struct parameters are not supported; pass a pointer");
          return false;
        }
        D.Params.push_back({PD.Name, PTy});
        ParamTys.push_back(PTy);
        if (!Lex.accept(Tok::Comma))
          break;
      }
      if (!expect(Tok::RParen))
        return false;
    }
    D.Ty = TT.functionOf(Ty, std::move(ParamTys));
    return true;
  }
  // Array suffixes bind inner-to-outer: int a[2][3] is array 2 of array 3.
  std::vector<int64_t> Dims;
  while (Lex.accept(Tok::LBracket)) {
    if (Lex.accept(Tok::RBracket)) {
      Dims.push_back(-1); // Unsized; must come first and get its size
                          // from the initializer.
      continue;
    }
    int64_t N = parseConstExpr();
    Dims.push_back(N);
    if (!expect(Tok::RBracket))
      return false;
  }
  for (size_t I = Dims.size(); I-- > 0;) {
    int64_t N = Dims[I];
    Ty = TT.arrayOf(Ty, N < 0 ? 0 : static_cast<uint32_t>(N));
  }
  D.Ty = Ty;
  return true;
}

bool Compiler::parseEnumDef() {
  expect(Tok::KwEnum);
  if (Lex.kind() == Tok::Ident)
    Lex.next(); // Tag, ignored.
  if (!expect(Tok::LBrace))
    return false;
  int64_t Next = 0;
  while (Lex.kind() == Tok::Ident) {
    std::string Name = Lex.text();
    Lex.next();
    if (Lex.accept(Tok::Assign))
      Next = parseConstExpr();
    Sym S;
    S.Kind = Sym::KEnum;
    S.Name = Name;
    S.Ty = TT.I32Ty;
    S.Off = Next++;
    declare(std::move(S));
    if (!Lex.accept(Tok::Comma))
      break;
  }
  if (!expect(Tok::RBrace))
    return false;
  return expect(Tok::Semi);
}

bool Compiler::parseTopLevel() {
  if (Lex.kind() == Tok::KwEnum)
    return parseEnumDef();
  bool IsExtern = false;
  for (;;) {
    if (Lex.accept(Tok::KwExtern)) {
      IsExtern = true;
      continue;
    }
    if (Lex.accept(Tok::KwStatic))
      continue;
    break;
  }
  std::optional<TypeId> Base = tryParseBaseType();
  if (!Base) {
    error("expected declaration");
    return false;
  }
  if (Lex.accept(Tok::Semi))
    return true; // Bare struct definition.
  for (;;) {
    Declarator D;
    if (!parseDeclarator(*Base, D))
      return false;
    if (D.Name.empty()) {
      error("expected declarator name");
      return false;
    }
    if (D.IsFunc && Lex.kind() == Tok::LBrace)
      return parseFunctionDef(D);
    if (D.IsFunc) {
      // Prototype.
      if (!lookup(D.Name)) {
        Sym S;
        S.Kind = Sym::KFunc;
        S.Name = D.Name;
        S.Ty = D.Ty;
        S.SymIdx = M->internSymbol(D.Name, /*IsFunction=*/true);
        Scopes[0].push_back(std::move(S));
      }
    } else {
      // Global variable.
      uint32_t SymIdx = M->internSymbol(D.Name, /*IsFunction=*/false);
      Sym S;
      S.Kind = Sym::KGlobal;
      S.Name = D.Name;
      S.Ty = D.Ty;
      S.SymIdx = SymIdx;
      if (!lookup(D.Name))
        Scopes[0].push_back(S);
      if (!IsExtern)
        parseGlobalInit(D, SymIdx);
    }
    if (Lex.accept(Tok::Comma))
      continue;
    return expect(Tok::Semi);
  }
}

void Compiler::parseGlobalInit(const Declarator &DIn, uint32_t SymIdx) {
  Declarator D = DIn;
  ir::Global G;
  G.SymbolIndex = SymIdx;
  G.Align = std::max<uint32_t>(TT.alignOf(D.Ty), 1);

  auto storeScalar = [&](std::vector<uint8_t> &Out, TypeId Ty, int64_t V) {
    uint32_t Sz = TT.sizeOf(Ty);
    for (uint32_t I = 0; I != Sz; ++I)
      Out.push_back(static_cast<uint8_t>(V >> (8 * I)));
  };

  if (Lex.accept(Tok::Assign)) {
    if (Lex.kind() == Tok::StrConst && TT.isArray(D.Ty)) {
      std::string S = Lex.strValue();
      Lex.next();
      uint32_t Need = static_cast<uint32_t>(S.size() + 1);
      TypeId Elem = TT.get(D.Ty).Elem;
      if (TT.get(D.Ty).ArraySize == 0)
        D.Ty = TT.arrayOf(Elem, Need);
      G.Init.assign(S.begin(), S.end());
      G.Init.push_back(0);
    } else if (Lex.accept(Tok::LBrace)) {
      if (!TT.isArray(D.Ty)) {
        error("brace initializer on non-array global");
        return;
      }
      TypeId Elem = TT.get(D.Ty).Elem;
      std::vector<uint8_t> Bytes;
      uint32_t Count = 0;
      if (!Lex.accept(Tok::RBrace)) {
        for (;;) {
          int64_t V = parseConstExpr();
          storeScalar(Bytes, Elem, V);
          ++Count;
          if (!Lex.accept(Tok::Comma))
            break;
          if (Lex.kind() == Tok::RBrace)
            break; // Trailing comma.
        }
        expect(Tok::RBrace);
      }
      if (TT.get(D.Ty).ArraySize == 0)
        D.Ty = TT.arrayOf(Elem, Count);
      G.Init = std::move(Bytes);
    } else {
      int64_t V = parseConstExpr();
      std::vector<uint8_t> Bytes;
      storeScalar(Bytes, TT.isScalar(D.Ty) ? D.Ty : TT.I32Ty, V);
      G.Init = std::move(Bytes);
    }
  }
  // Update the scope entry in case an unsized array got its size.
  if (Sym *S = lookup(D.Name))
    S->Ty = D.Ty;
  G.Size = std::max<uint32_t>(TT.sizeOf(D.Ty), 1);
  if (G.Init.size() > G.Size)
    G.Size = static_cast<uint32_t>(G.Init.size());
  M->Globals.push_back(std::move(G));
}

bool Compiler::parseFunctionDef(const Declarator &D) {
  TypeId FnTy = D.Ty;
  RetTy = TT.get(FnTy).Elem;

  // Register (or re-register) the function symbol at file scope.
  if (Sym *Existing = lookup(D.Name)) {
    Existing->Ty = FnTy;
  } else {
    Sym S;
    S.Kind = Sym::KFunc;
    S.Name = D.Name;
    S.Ty = FnTy;
    S.SymIdx = M->internSymbol(D.Name, true);
    Scopes[0].push_back(std::move(S));
  }

  F = M->addFunction(D.Name);
  F->ParamBytes = static_cast<uint32_t>(D.Params.size() * 4);
  GotoLabels.clear();

  pushScope();
  for (size_t I = 0; I != D.Params.size(); ++I) {
    const auto &[PName, PTy] = D.Params[I];
    Sym S;
    S.Name = PName;
    S.Ty = PTy;
    if (I < 4) {
      // Register parameter: the code generator stores it to a frame slot.
      S.Kind = Sym::KLocal;
      S.Off = allocLocal(4, 4);
      F->ParamSlots.push_back(static_cast<uint32_t>(S.Off));
    } else {
      S.Kind = Sym::KStackParam;
      S.Off = static_cast<int64_t>(4 * (I - 4));
    }
    declare(std::move(S));
  }

  if (!expect(Tok::LBrace))
    return false;
  while (!Lex.accept(Tok::RBrace)) {
    if (Lex.kind() == Tok::End || Failed) {
      if (!Failed)
        error("unterminated function body");
      return false;
    }
    parseStatement();
  }
  popScope();

  for (const auto &[Name, L] : GotoLabels)
    if (!L.Defined)
      error("goto label '" + Name + "' never defined");

  // Fall-off-the-end return.
  if (TT.isVoid(RetTy))
    emit(newTree(Op::RET, TypeSuffix::V, 0));
  else
    emit(newTree(Op::RET, valSuffix(promote(RetTy)), 0, tcnst(0)));
  F = nullptr;
  return !Failed;
}

//===----------------------------------------------------------------------===//
// Constant expressions
//===----------------------------------------------------------------------===//

int64_t Compiler::parseConstExpr() {
  // Constant expressions are evaluated over a tiny recursive interpreter
  // that mirrors the expression grammar for side-effect-free operators.
  struct ConstEval {
    Compiler &C;
    explicit ConstEval(Compiler &C) : C(C) {}

    int64_t primary() {
      Lexer &L = C.Lex;
      if (L.kind() == Tok::IntConst) {
        int64_t V = L.intValue();
        L.next();
        return V;
      }
      if (L.accept(Tok::LParen)) {
        // Either a cast-to-int-type (ignored at 32 bits) or parens.
        std::optional<TypeId> Ty = C.tryParseBaseType();
        if (Ty) {
          C.expect(Tok::RParen);
          int64_t V = unary();
          uint32_t Sz = C.TT.sizeOf(*Ty);
          if (Sz == 1)
            return C.TT.isUnsigned(*Ty) ? (V & 0xFF)
                                        : static_cast<int8_t>(V);
          if (Sz == 2)
            return C.TT.isUnsigned(*Ty) ? (V & 0xFFFF)
                                        : static_cast<int16_t>(V);
          return static_cast<int32_t>(V);
        }
        int64_t V = ternary();
        C.expect(Tok::RParen);
        return V;
      }
      if (L.accept(Tok::KwSizeof)) {
        C.expect(Tok::LParen);
        std::optional<TypeId> Ty = C.tryParseBaseType();
        if (!Ty) {
          C.error("sizeof in constant expressions requires a type");
          return 0;
        }
        Declarator D;
        C.parseDeclarator(*Ty, D);
        C.expect(Tok::RParen);
        return C.TT.sizeOf(D.Ty);
      }
      if (L.kind() == Tok::Ident) {
        Sym *S = C.lookup(L.text());
        if (S && S->Kind == Sym::KEnum) {
          L.next();
          return S->Off;
        }
        C.error("'" + L.text() + "' is not a constant");
        L.next();
        return 0;
      }
      C.error("expected constant expression");
      return 0;
    }

    int64_t unary() {
      Lexer &L = C.Lex;
      if (L.accept(Tok::Minus))
        return static_cast<int32_t>(-unary());
      if (L.accept(Tok::Plus))
        return unary();
      if (L.accept(Tok::Tilde))
        return static_cast<int32_t>(~unary());
      if (L.accept(Tok::Bang))
        return unary() == 0;
      return primary();
    }

    int64_t binaryRhs(int MinPrec, int64_t Lhs) {
      for (;;) {
        Tok K = C.Lex.kind();
        int Prec = precOf(K);
        if (Prec < MinPrec)
          return Lhs;
        C.Lex.next();
        int64_t Rhs = unary();
        int NextPrec = precOf(C.Lex.kind());
        if (NextPrec > Prec)
          Rhs = binaryRhs(Prec + 1, Rhs);
        Lhs = apply(K, Lhs, Rhs);
      }
    }

    static int precOf(Tok K) {
      switch (K) {
      case Tok::Star: case Tok::Slash: case Tok::Percent: return 10;
      case Tok::Plus: case Tok::Minus: return 9;
      case Tok::Shl: case Tok::Shr: return 8;
      case Tok::Lt: case Tok::Gt: case Tok::Le: case Tok::Ge: return 7;
      case Tok::EqEq: case Tok::NotEq: return 6;
      case Tok::Amp: return 5;
      case Tok::Caret: return 4;
      case Tok::Pipe: return 3;
      case Tok::AmpAmp: return 2;
      case Tok::PipePipe: return 1;
      default: return 0;
      }
    }

    int64_t apply(Tok K, int64_t A, int64_t B) {
      auto AI = static_cast<int32_t>(A), BI = static_cast<int32_t>(B);
      switch (K) {
      case Tok::Star: return static_cast<int32_t>(AI * BI);
      case Tok::Slash: return BI ? AI / BI : 0;
      case Tok::Percent: return BI ? AI % BI : 0;
      case Tok::Plus: return static_cast<int32_t>(AI + BI);
      case Tok::Minus: return static_cast<int32_t>(AI - BI);
      case Tok::Shl: return static_cast<int32_t>(AI << (BI & 31));
      case Tok::Shr: return AI >> (BI & 31);
      case Tok::Lt: return AI < BI;
      case Tok::Gt: return AI > BI;
      case Tok::Le: return AI <= BI;
      case Tok::Ge: return AI >= BI;
      case Tok::EqEq: return AI == BI;
      case Tok::NotEq: return AI != BI;
      case Tok::Amp: return AI & BI;
      case Tok::Caret: return AI ^ BI;
      case Tok::Pipe: return AI | BI;
      case Tok::AmpAmp: return AI && BI;
      case Tok::PipePipe: return AI || BI;
      default: return 0;
      }
    }

    int64_t ternary() {
      int64_t Cond = binaryRhs(1, unary());
      if (!C.Lex.accept(Tok::Question))
        return Cond;
      int64_t T = ternary();
      C.expect(Tok::Colon);
      int64_t E = ternary();
      return Cond ? T : E;
    }
  };
  ConstEval CE(*this);
  return CE.ternary();
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

void Compiler::parseBlock() {
  pushScope();
  expect(Tok::LBrace);
  while (!Lex.accept(Tok::RBrace)) {
    if (Lex.kind() == Tok::End || Failed) {
      if (!Failed)
        error("unterminated block");
      break;
    }
    parseStatement();
  }
  popScope();
}

void Compiler::parseLocalDecl() {
  std::optional<TypeId> Base = tryParseBaseType();
  assert(Base && "caller checked startsType");
  if (Lex.accept(Tok::Semi))
    return; // Local struct definition.
  for (;;) {
    Declarator D;
    if (!parseDeclarator(*Base, D))
      return;
    if (D.IsFunc) {
      // Local function prototype.
      if (!lookup(D.Name)) {
        Sym S;
        S.Kind = Sym::KFunc;
        S.Name = D.Name;
        S.Ty = D.Ty;
        S.SymIdx = M->internSymbol(D.Name, true);
        Scopes[0].push_back(std::move(S));
      }
    } else {
      // Unsized local arrays take their size from a string initializer.
      if (TT.isArray(D.Ty) && TT.get(D.Ty).ArraySize == 0 &&
          Lex.kind() != Tok::Assign) {
        error("unsized local array");
        return;
      }
      Sym S;
      S.Kind = Sym::KLocal;
      S.Name = D.Name;
      S.Ty = D.Ty;
      if (Lex.kind() == Tok::Assign && TT.isArray(D.Ty)) {
        Lex.next();
        if (Lex.kind() != Tok::StrConst) {
          error("local array initializers support string literals only");
          return;
        }
        std::string Str = Lex.strValue();
        Lex.next();
        uint32_t Need = static_cast<uint32_t>(Str.size() + 1);
        if (TT.get(D.Ty).ArraySize == 0)
          S.Ty = TT.arrayOf(TT.get(D.Ty).Elem, Need);
        S.Off = allocLocal(TT.sizeOf(S.Ty), TT.alignOf(S.Ty));
        // Copy the pooled string into the local array.
        Value StrV = {nullptr, 0, false, false, false};
        uint32_t StrSym;
        auto It = StringPool.find(Str);
        if (It != StringPool.end()) {
          StrSym = It->second;
        } else {
          std::string GName = "Lstr" + std::to_string(StrCounter++);
          StrSym = M->internSymbol(GName, false);
          ir::Global G;
          G.SymbolIndex = StrSym;
          G.Size = Need;
          G.Align = 1;
          G.Init.assign(Str.begin(), Str.end());
          G.Init.push_back(0);
          M->Globals.push_back(std::move(G));
          StringPool[Str] = StrSym;
        }
        (void)StrV;
        emit(newTree(Op::ASGNB, TypeSuffix::B, Need, taddrl(S.Off),
                     newTree(Op::ADDRG, TypeSuffix::P, StrSym)));
        declare(std::move(S));
      } else {
        S.Off = allocLocal(std::max<uint32_t>(TT.sizeOf(S.Ty), 1),
                           std::max<uint32_t>(TT.alignOf(S.Ty), 1));
        Sym &Decl = declare(std::move(S));
        if (Lex.accept(Tok::Assign)) {
          if (!TT.isScalar(Decl.Ty) && !TT.isStruct(Decl.Ty)) {
            error("unsupported local initializer");
            return;
          }
          Value R = rvalue(parseAssign());
          emitStore(taddrl(Decl.Off), Decl.Ty, R);
        }
      }
    }
    if (Lex.accept(Tok::Comma))
      continue;
    expect(Tok::Semi);
    return;
  }
}

bool Compiler::condNeedsValueLowering(Tok Stop) {
  // Scan ahead to the matching ')' / stop token; if a top-level ||, ?:,
  // comma or assignment appears, the condition is parsed as a plain
  // expression (value lowering) instead of direct branches.
  Lexer::State S = Lex.save();
  int Depth = 0;
  bool Complex = false;
  for (;;) {
    Tok K = Lex.kind();
    if (K == Tok::End)
      break;
    if (K == Tok::LParen || K == Tok::LBracket) {
      ++Depth;
    } else if (K == Tok::RParen || K == Tok::RBracket) {
      if (Depth == 0)
        break;
      --Depth;
    } else if (Depth == 0) {
      if (K == Stop)
        break;
      switch (K) {
      case Tok::PipePipe:
      case Tok::Question:
      case Tok::Comma:
      case Tok::Assign:
      case Tok::PlusAssign: case Tok::MinusAssign: case Tok::StarAssign:
      case Tok::SlashAssign: case Tok::PercentAssign: case Tok::AmpAssign:
      case Tok::PipeAssign: case Tok::CaretAssign: case Tok::ShlAssign:
      case Tok::ShrAssign:
        Complex = true;
        break;
      default:
        break;
      }
      if (Complex)
        break;
    }
    Lex.next();
  }
  Lex.restore(S);
  return Complex;
}

void Compiler::parseCondFalse(uint32_t FalseL, Tok Stop) {
  if (condNeedsValueLowering(Stop)) {
    Value V = parseExpr();
    emitBranch(V, FalseL, /*IfTrue=*/false);
    return;
  }
  // Pure &&-chain (possibly a single atom): every atom false-branches to
  // FalseL, reproducing the paper's inverted-comparison shape
  // (if (j > 0) ... => LEI[L](j, 0)).
  for (;;) {
    Value A = parseBinary(3); // Binary levels at/above bitwise-or.
    emitBranch(A, FalseL, /*IfTrue=*/false);
    if (!Lex.accept(Tok::AmpAmp))
      return;
  }
}

void Compiler::parseCondTrue(uint32_t TrueL, Tok Stop) {
  if (condNeedsValueLowering(Stop)) {
    Value V = parseExpr();
    emitBranch(V, TrueL, /*IfTrue=*/true);
    return;
  }
  uint32_t FailL = ~0u;
  for (;;) {
    Value A = parseBinary(3);
    if (Lex.accept(Tok::AmpAmp)) {
      if (FailL == ~0u)
        FailL = newLabel();
      emitBranch(A, FailL, /*IfTrue=*/false);
      continue;
    }
    emitBranch(A, TrueL, /*IfTrue=*/true);
    break;
  }
  if (FailL != ~0u)
    placeLabel(FailL);
}

void Compiler::parseStatement() {
  switch (Lex.kind()) {
  case Tok::LBrace:
    parseBlock();
    return;
  case Tok::Semi:
    Lex.next();
    return;
  case Tok::KwIf: {
    Lex.next();
    expect(Tok::LParen);
    uint32_t ElseL = newLabel();
    parseCondFalse(ElseL, Tok::RParen);
    expect(Tok::RParen);
    parseStatement();
    if (Lex.accept(Tok::KwElse)) {
      uint32_t EndL = newLabel();
      emitJump(EndL);
      placeLabel(ElseL);
      parseStatement();
      placeLabel(EndL);
    } else {
      placeLabel(ElseL);
    }
    return;
  }
  case Tok::KwWhile: {
    Lex.next();
    expect(Tok::LParen);
    uint32_t TopL = newLabel(), EndL = newLabel();
    placeLabel(TopL);
    parseCondFalse(EndL, Tok::RParen);
    expect(Tok::RParen);
    BreakLabels.push_back(EndL);
    ContinueLabels.push_back(TopL);
    parseStatement();
    BreakLabels.pop_back();
    ContinueLabels.pop_back();
    emitJump(TopL);
    placeLabel(EndL);
    return;
  }
  case Tok::KwDo: {
    Lex.next();
    uint32_t TopL = newLabel(), EndL = newLabel(), ContL = newLabel();
    placeLabel(TopL);
    BreakLabels.push_back(EndL);
    ContinueLabels.push_back(ContL);
    parseStatement();
    BreakLabels.pop_back();
    ContinueLabels.pop_back();
    placeLabel(ContL);
    expect(Tok::KwWhile);
    expect(Tok::LParen);
    parseCondTrue(TopL, Tok::RParen);
    expect(Tok::RParen);
    expect(Tok::Semi);
    placeLabel(EndL);
    return;
  }
  case Tok::KwFor: {
    Lex.next();
    expect(Tok::LParen);
    pushScope();
    if (!Lex.accept(Tok::Semi)) {
      if (startsType()) {
        parseLocalDecl(); // Consumes the ';'.
      } else {
        parseExpr();
        expect(Tok::Semi);
      }
    }
    uint32_t TopL = newLabel(), EndL = newLabel(), ContL = newLabel();
    placeLabel(TopL);
    if (!Lex.accept(Tok::Semi)) {
      parseCondFalse(EndL, Tok::Semi);
      expect(Tok::Semi);
    }
    // Step expression: parse lazily by snapshotting the lexer, emit after
    // the body (single-pass trick).
    Lexer::State StepStart = Lex.save();
    int Depth = 0;
    while (!(Lex.kind() == Tok::RParen && Depth == 0)) {
      if (Lex.kind() == Tok::LParen)
        ++Depth;
      else if (Lex.kind() == Tok::RParen)
        --Depth;
      else if (Lex.kind() == Tok::End) {
        error("unterminated for header");
        return;
      }
      Lex.next();
    }
    Lexer::State AfterStep = Lex.save();
    expect(Tok::RParen);
    BreakLabels.push_back(EndL);
    ContinueLabels.push_back(ContL);
    parseStatement();
    BreakLabels.pop_back();
    ContinueLabels.pop_back();
    placeLabel(ContL);
    Lexer::State AfterBody = Lex.save();
    Lex.restore(StepStart);
    if (Lex.kind() != Tok::RParen)
      parseExpr();
    Lex.restore(AfterBody);
    (void)AfterStep;
    emitJump(TopL);
    placeLabel(EndL);
    popScope();
    return;
  }
  case Tok::KwReturn: {
    Lex.next();
    if (Lex.accept(Tok::Semi)) {
      emit(newTree(Op::RET, TypeSuffix::V, 0));
      return;
    }
    Value V = rvalue(parseExpr());
    expect(Tok::Semi);
    if (TT.isVoid(RetTy)) {
      error("return with a value in a void function");
      return;
    }
    emit(newTree(Op::RET, valSuffix(promote(RetTy)), 0, V.T));
    return;
  }
  case Tok::KwBreak: {
    Lex.next();
    expect(Tok::Semi);
    if (BreakLabels.empty()) {
      error("break outside loop or switch");
      return;
    }
    emitJump(BreakLabels.back());
    return;
  }
  case Tok::KwContinue: {
    Lex.next();
    expect(Tok::Semi);
    if (ContinueLabels.empty()) {
      error("continue outside loop");
      return;
    }
    emitJump(ContinueLabels.back());
    return;
  }
  case Tok::KwSwitch: {
    Lex.next();
    expect(Tok::LParen);
    Value Scrut = rvalue(parseExpr());
    expect(Tok::RParen);
    SwitchCtx Ctx;
    Ctx.EndL = newLabel();
    Ctx.DispatchL = newLabel();
    Ctx.TempOff = newTemp();
    emit(newTree(Op::ASGN, TypeSuffix::I, 0, taddrl(Ctx.TempOff), Scrut.T));
    emitJump(Ctx.DispatchL);
    Switches.push_back(Ctx);
    BreakLabels.push_back(Ctx.EndL);
    parseStatement();
    BreakLabels.pop_back();
    SwitchCtx Done = Switches.back();
    Switches.pop_back();
    emitJump(Done.EndL);
    placeLabel(Done.DispatchL);
    for (const auto &[K, L] : Done.Cases)
      emit(newTree(Op::EQ, TypeSuffix::I, L,
                   newTree(Op::INDIR, TypeSuffix::I, 0,
                           taddrl(Done.TempOff)),
                   tcnst(K)));
    emitJump(Done.DefaultL != ~0u ? Done.DefaultL : Done.EndL);
    placeLabel(Done.EndL);
    return;
  }
  case Tok::KwCase: {
    Lex.next();
    int64_t K = parseConstExpr();
    expect(Tok::Colon);
    if (Switches.empty()) {
      error("case outside switch");
      return;
    }
    uint32_t L = newLabel();
    placeLabel(L);
    Switches.back().Cases.push_back({K, L});
    parseStatement();
    return;
  }
  case Tok::KwDefault: {
    Lex.next();
    expect(Tok::Colon);
    if (Switches.empty()) {
      error("default outside switch");
      return;
    }
    uint32_t L = newLabel();
    placeLabel(L);
    Switches.back().DefaultL = L;
    parseStatement();
    return;
  }
  case Tok::KwGoto: {
    Lex.next();
    if (Lex.kind() != Tok::Ident) {
      error("expected label after goto");
      return;
    }
    std::string Name = Lex.text();
    Lex.next();
    expect(Tok::Semi);
    auto It = GotoLabels.find(Name);
    if (It == GotoLabels.end())
      It = GotoLabels.insert({Name, {newLabel(), false}}).first;
    emitJump(It->second.Id);
    return;
  }
  default:
    break;
  }

  if (startsType()) {
    parseLocalDecl();
    return;
  }

  // Named label: IDENT ':' (but not part of an expression).
  if (Lex.kind() == Tok::Ident) {
    Lexer::State S = Lex.save();
    std::string Name = Lex.text();
    Lex.next();
    if (Lex.kind() == Tok::Colon) {
      Lex.next();
      auto It = GotoLabels.find(Name);
      if (It == GotoLabels.end())
        It = GotoLabels.insert({Name, {newLabel(), false}}).first;
      if (It->second.Defined) {
        error("label '" + Name + "' redefined");
        return;
      }
      It->second.Defined = true;
      placeLabel(It->second.Id);
      parseStatement();
      return;
    }
    Lex.restore(S);
  }

  // Expression statement.
  Value V = parseExpr();
  expect(Tok::Semi);
  if (V.BareCall) {
    emit(V.T); // Call for effect, result discarded.
    return;
  }
  // Assignments and side effects were already emitted; a remaining pure
  // tree is discarded.
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

Value Compiler::parseExpr() {
  Value V = parseAssign();
  while (Lex.accept(Tok::Comma)) {
    if (V.BareCall)
      emit(V.T);
    V = parseAssign();
  }
  return V;
}

Value Compiler::parseAssign() {
  Value L = parseConditional();
  Tok K = Lex.kind();
  Op BinOp;
  switch (K) {
  case Tok::Assign: BinOp = Op::NumOps; break;
  case Tok::PlusAssign: BinOp = Op::ADD; break;
  case Tok::MinusAssign: BinOp = Op::SUB; break;
  case Tok::StarAssign: BinOp = Op::MUL; break;
  case Tok::SlashAssign: BinOp = Op::DIV; break;
  case Tok::PercentAssign: BinOp = Op::MOD; break;
  case Tok::AmpAssign: BinOp = Op::BAND; break;
  case Tok::PipeAssign: BinOp = Op::BOR; break;
  case Tok::CaretAssign: BinOp = Op::BXOR; break;
  case Tok::ShlAssign: BinOp = Op::LSH; break;
  case Tok::ShrAssign: BinOp = Op::RSH; break;
  default:
    return L;
  }
  Lex.next();
  if (!L.LValue) {
    error("assignment to non-lvalue");
    return L;
  }

  if (K == Tok::Assign) {
    Value R = rvalue(parseAssign());
    if (TT.isStruct(L.Ty)) {
      emitStore(L.T, L.Ty, R);
      return L;
    }
    L = reusableAddr(L);
    // Narrow stores truncate implicitly; pointer/int mix is accepted.
    emitStore(addrCopy(L), L.Ty, R);
    return L;
  }

  // Compound assignment: load, op, store.
  L = reusableAddr(L);
  Value Cur = rvalue(Value{addrCopy(L), L.Ty, true, false, false});
  Value R = rvalue(parseAssign());
  TypeSuffix S;
  Tree *NewV;
  if (TT.isPointer(L.Ty) && (BinOp == Op::ADD || BinOp == Op::SUB)) {
    uint32_t Sz = TT.sizeOf(TT.get(L.Ty).Elem);
    Tree *Scaled = tbin(Op::MUL, TypeSuffix::I, R.T, tcnst(Sz));
    NewV = tbin(BinOp, TypeSuffix::P, Cur.T, Scaled);
  } else {
    bool U = TT.isUnsigned(Cur.Ty) || TT.isUnsigned(R.Ty);
    S = U ? TypeSuffix::U : TypeSuffix::I;
    NewV = tbin(BinOp, S, Cur.T, R.T);
  }
  emitStore(addrCopy(L), L.Ty, Value{NewV, L.Ty, false, false, false});
  return L;
}

Value Compiler::parseConditional() {
  Value C = parseLogicalOr();
  if (!Lex.accept(Tok::Question))
    return C;
  uint32_t ElseL = newLabel(), EndL = newLabel();
  uint32_t Tmp = newTemp();
  emitBranch(C, ElseL, /*IfTrue=*/false);
  Value TV = rvalue(parseAssign());
  TypeSuffix S = memSuffix(TT.isScalar(TV.Ty) ? TV.Ty : TT.I32Ty);
  emit(newTree(Op::ASGN, S, 0, taddrl(Tmp), TV.T));
  emitJump(EndL);
  placeLabel(ElseL);
  expect(Tok::Colon);
  Value EV = rvalue(parseConditional());
  emit(newTree(Op::ASGN, S, 0, taddrl(Tmp), EV.T));
  placeLabel(EndL);
  TypeId Ty = TV.Ty;
  return {newTree(Op::INDIR, S, 0, taddrl(Tmp)), Ty, false, false, false};
}

Value Compiler::parseLogicalOr() {
  Value L = parseLogicalAnd();
  if (Lex.kind() != Tok::PipePipe)
    return L;
  uint32_t Tmp = newTemp(), EndL = newLabel();
  emit(newTree(Op::ASGN, TypeSuffix::I, 0, taddrl(Tmp), tcnst(1)));
  emitBranch(L, EndL, /*IfTrue=*/true);
  while (Lex.accept(Tok::PipePipe)) {
    Value R = parseLogicalAnd();
    emitBranch(R, EndL, /*IfTrue=*/true);
  }
  emit(newTree(Op::ASGN, TypeSuffix::I, 0, taddrl(Tmp), tcnst(0)));
  placeLabel(EndL);
  return {newTree(Op::INDIR, TypeSuffix::I, 0, taddrl(Tmp)), TT.I32Ty,
          false, false, false};
}

Value Compiler::parseLogicalAnd() {
  Value L = parseBinary(3);
  if (Lex.kind() != Tok::AmpAmp)
    return L;
  uint32_t Tmp = newTemp(), EndL = newLabel();
  emit(newTree(Op::ASGN, TypeSuffix::I, 0, taddrl(Tmp), tcnst(0)));
  emitBranch(L, EndL, /*IfTrue=*/false);
  while (Lex.accept(Tok::AmpAmp)) {
    Value R = parseBinary(3);
    emitBranch(R, EndL, /*IfTrue=*/false);
  }
  emit(newTree(Op::ASGN, TypeSuffix::I, 0, taddrl(Tmp), tcnst(1)));
  placeLabel(EndL);
  return {newTree(Op::INDIR, TypeSuffix::I, 0, taddrl(Tmp)), TT.I32Ty,
          false, false, false};
}

/// Binary operator precedences (bitwise-or level = 3 upward; && and ||
/// are handled separately for short-circuit lowering).
static int binPrec(Tok K) {
  switch (K) {
  case Tok::Star: case Tok::Slash: case Tok::Percent: return 10;
  case Tok::Plus: case Tok::Minus: return 9;
  case Tok::Shl: case Tok::Shr: return 8;
  case Tok::Lt: case Tok::Gt: case Tok::Le: case Tok::Ge: return 7;
  case Tok::EqEq: case Tok::NotEq: return 6;
  case Tok::Amp: return 5;
  case Tok::Caret: return 4;
  case Tok::Pipe: return 3;
  default: return 0;
  }
}

Value Compiler::parseBinary(int MinPrec) {
  Value L = parseUnary();
  for (;;) {
    Tok K = Lex.kind();
    int Prec = binPrec(K);
    if (Prec < MinPrec)
      return L;
    Lex.next();
    Value LV = rvalue(L);
    // Parse the right side at strictly higher precedence (left assoc).
    Value RV = rvalue(parseBinary(Prec + 1));
    L = combine(K, LV, RV);
  }
}

Value Compiler::parsePrimary() {
  switch (Lex.kind()) {
  case Tok::IntConst: {
    int64_t V = Lex.intValue();
    Lex.next();
    return {tcnst(V), TT.I32Ty, false, false, false};
  }
  case Tok::StrConst: {
    std::string S = Lex.strValue();
    Lex.next();
    uint32_t SymIdx;
    auto It = StringPool.find(S);
    if (It != StringPool.end()) {
      SymIdx = It->second;
    } else {
      std::string GName = "Lstr" + std::to_string(StrCounter++);
      SymIdx = M->internSymbol(GName, false);
      ir::Global G;
      G.SymbolIndex = SymIdx;
      G.Size = static_cast<uint32_t>(S.size() + 1);
      G.Align = 1;
      G.Init.assign(S.begin(), S.end());
      G.Init.push_back(0);
      M->Globals.push_back(std::move(G));
      StringPool[S] = SymIdx;
    }
    return {newTree(Op::ADDRG, TypeSuffix::P, SymIdx),
            TT.pointerTo(TT.I8Ty), false, false, false};
  }
  case Tok::LParen: {
    Lex.next();
    Value V = parseExpr();
    expect(Tok::RParen);
    return V;
  }
  case Tok::Ident: {
    std::string Name = Lex.text();
    Lex.next();
    Sym *S = lookup(Name);
    if (Lex.kind() == Tok::LParen) {
      // Function call (possibly implicitly declared).
      if (!S) {
        Sym NS;
        NS.Kind = Sym::KFunc;
        NS.Name = Name;
        NS.Ty = TT.functionOf(TT.I32Ty, {});
        NS.SymIdx = M->internSymbol(Name, true);
        Scopes[0].push_back(std::move(NS));
        S = lookup(Name);
      }
      if (S->Kind == Sym::KFunc)
        return parseCall(S);
    }
    if (!S) {
      error("undeclared identifier '" + Name + "'");
      return {tcnst(0), TT.I32Ty, false, false, false};
    }
    switch (S->Kind) {
    case Sym::KEnum:
      return {tcnst(S->Off), TT.I32Ty, false, false, false};
    case Sym::KLocal:
      return {taddrl(S->Off), S->Ty, true, false, false};
    case Sym::KStackParam:
      return {newTree(Op::ADDRF, TypeSuffix::P, S->Off), S->Ty, true,
              false, false};
    case Sym::KGlobal:
      return {newTree(Op::ADDRG, TypeSuffix::P, S->SymIdx), S->Ty, true,
              false, false};
    case Sym::KFunc:
      return {newTree(Op::ADDRG, TypeSuffix::P, S->SymIdx), S->Ty, true,
              false, false};
    }
    ccomp_unreachable("bad symbol kind");
  }
  default:
    error(std::string("unexpected token '") + tokName(Lex.kind()) +
          "' in expression");
    Lex.next();
    return {tcnst(0), TT.I32Ty, false, false, false};
  }
}

Value Compiler::parseCall(Sym *FnSym) {
  expect(Tok::LParen);
  const Type &FnTy = TT.get(FnSym->Ty);
  TypeId Ret = FnTy.Elem;

  std::vector<Value> Args;
  if (!Lex.accept(Tok::RParen)) {
    for (;;) {
      Value A = rvalue(parseAssign());
      Args.push_back(A);
      if (!Lex.accept(Tok::Comma))
        break;
    }
    expect(Tok::RParen);
  }

  // Emit ARG trees immediately before the CALL (lcc convention).
  for (Value &A : Args) {
    TypeSuffix S = valSuffix(A.Ty);
    emit(newTree(Op::ARG, S, 0, A.T));
  }

  TypeSuffix CallS = TT.isVoid(Ret) ? TypeSuffix::V : valSuffix(promote(Ret));
  Tree *Callee = newTree(Op::ADDRG, TypeSuffix::P, FnSym->SymIdx);
  Tree *Call = newTree(Op::CALL, CallS, static_cast<int64_t>(Args.size()),
                       Callee);
  return {Call, Ret, false, false, /*BareCall=*/true};
}

Value Compiler::parsePostfix() {
  Value V = parsePrimary();
  for (;;) {
    switch (Lex.kind()) {
    case Tok::LBracket: {
      Lex.next();
      Value Base = rvalue(V);
      Value Idx = rvalue(parseExpr());
      expect(Tok::RBracket);
      if (!TT.isPointer(Base.Ty)) {
        // index[ptr] form.
        std::swap(Base, Idx);
      }
      if (!TT.isPointer(Base.Ty)) {
        error("subscripted value is not a pointer or array");
        return Base;
      }
      TypeId Elem = TT.get(Base.Ty).Elem;
      uint32_t Sz = TT.sizeOf(Elem);
      Tree *Scaled = tbin(Op::MUL, TypeSuffix::I, Idx.T,
                          tcnst(static_cast<int64_t>(Sz)));
      Tree *Addr = tbin(Op::ADD, TypeSuffix::P, Base.T, Scaled);
      V = {Addr, Elem, true, false, false};
      continue;
    }
    case Tok::Dot:
    case Tok::Arrow: {
      bool IsArrow = Lex.kind() == Tok::Arrow;
      Lex.next();
      if (Lex.kind() != Tok::Ident) {
        error("expected member name");
        return V;
      }
      std::string Member = Lex.text();
      Lex.next();
      Tree *Addr;
      TypeId StructTy;
      if (IsArrow) {
        Value P = rvalue(V);
        if (!TT.isPointer(P.Ty) || !TT.isStruct(TT.get(P.Ty).Elem)) {
          error("-> on non-struct-pointer");
          return V;
        }
        Addr = P.T;
        StructTy = TT.get(P.Ty).Elem;
      } else {
        if (!V.LValue || !TT.isStruct(V.Ty)) {
          error(". on non-struct");
          return V;
        }
        Addr = V.T;
        StructTy = V.Ty;
      }
      const StructInfo &SI = TT.structInfo(TT.get(StructTy).StructIdx);
      const Field *Fld = nullptr;
      for (const Field &Candidate : SI.Fields)
        if (Candidate.Name == Member)
          Fld = &Candidate;
      if (!Fld) {
        error("no member '" + Member + "' in struct " + SI.Name);
        return V;
      }
      Tree *FA = Fld->Offset
                     ? tbin(Op::ADD, TypeSuffix::P, Addr,
                            tcnst(static_cast<int64_t>(Fld->Offset)))
                     : Addr;
      V = {FA, Fld->Ty, true, false, false};
      continue;
    }
    case Tok::PlusPlus:
    case Tok::MinusMinus: {
      bool Inc = Lex.kind() == Tok::PlusPlus;
      Lex.next();
      if (!V.LValue) {
        error("++/-- on non-lvalue");
        return V;
      }
      Value L = reusableAddr(V);
      Value Old = rvalue(Value{addrCopy(L), L.Ty, true, false, false});
      // Save the old value.
      uint32_t Tmp = newTemp();
      TypeSuffix S = memSuffix(promote(TT.isScalar(L.Ty) ? L.Ty : TT.I32Ty));
      emit(newTree(Op::ASGN, S, 0, taddrl(Tmp), Old.T));
      // Store the new value.
      Tree *Delta;
      TypeSuffix OpS;
      if (TT.isPointer(L.Ty)) {
        Delta = tcnst(static_cast<int64_t>(TT.sizeOf(TT.get(L.Ty).Elem)));
        OpS = TypeSuffix::P;
      } else {
        Delta = tcnst(1);
        OpS = valSuffix(promote(L.Ty));
      }
      Tree *Reload = newTree(Op::INDIR, S, 0, taddrl(Tmp));
      Tree *NewV = tbin(Inc ? Op::ADD : Op::SUB, OpS, Reload, Delta);
      emitStore(addrCopy(L), L.Ty, Value{NewV, L.Ty, false, false, false});
      V = {newTree(Op::INDIR, S, 0, taddrl(Tmp)),
           promote(TT.isScalar(L.Ty) ? L.Ty : TT.I32Ty), false, false,
           false};
      continue;
    }
    default:
      return V;
    }
  }
}

Value Compiler::parseUnary() {
  switch (Lex.kind()) {
  case Tok::PlusPlus:
  case Tok::MinusMinus: {
    bool Inc = Lex.kind() == Tok::PlusPlus;
    Lex.next();
    Value V = parseUnary();
    if (!V.LValue) {
      error("++/-- on non-lvalue");
      return V;
    }
    Value L = reusableAddr(V);
    Value Cur = rvalue(Value{addrCopy(L), L.Ty, true, false, false});
    Tree *Delta;
    TypeSuffix OpS;
    if (TT.isPointer(L.Ty)) {
      Delta = tcnst(static_cast<int64_t>(TT.sizeOf(TT.get(L.Ty).Elem)));
      OpS = TypeSuffix::P;
    } else {
      Delta = tcnst(1);
      OpS = valSuffix(promote(L.Ty));
    }
    Tree *NewV = tbin(Inc ? Op::ADD : Op::SUB, OpS, Cur.T, Delta);
    emitStore(addrCopy(L), L.Ty, Value{NewV, L.Ty, false, false, false});
    return Value{addrCopy(L), L.Ty, true, false, false};
  }
  case Tok::Plus:
    Lex.next();
    return rvalue(parseUnary());
  case Tok::Minus: {
    Lex.next();
    Value V = rvalue(parseUnary());
    if (V.T->O == Op::CNST)
      return {tcnst(static_cast<int32_t>(-V.T->Literal)), V.Ty, false,
              false, false};
    return {newTree(Op::NEG, valSuffix(V.Ty), 0, V.T), V.Ty, false, false,
            false};
  }
  case Tok::Tilde: {
    Lex.next();
    Value V = rvalue(parseUnary());
    if (V.T->O == Op::CNST)
      return {tcnst(static_cast<int32_t>(~V.T->Literal)), V.Ty, false,
              false, false};
    return {newTree(Op::BCOM, valSuffix(V.Ty), 0, V.T), V.Ty, false, false,
            false};
  }
  case Tok::Bang: {
    Lex.next();
    Value V = parseUnary();
    if (V.IsCmp) {
      V.T->O = invertCmp(V.T->O);
      return V;
    }
    Value R = rvalue(V);
    if (R.T->O == Op::CNST)
      return {tcnst(R.T->Literal == 0), TT.I32Ty, false, false, false};
    // !x is the pending comparison x == 0.
    TypeSuffix S = valSuffix(R.Ty) == TypeSuffix::P ? TypeSuffix::U
                                                    : valSuffix(R.Ty);
    Tree *Cmp = newTree(Op::EQ, S, 0, R.T, tcnst(0));
    return {Cmp, TT.I32Ty, false, /*IsCmp=*/true, false};
  }
  case Tok::Star: {
    Lex.next();
    Value V = rvalue(parseUnary());
    if (!TT.isPointer(V.Ty)) {
      error("dereference of non-pointer");
      return V;
    }
    return {V.T, TT.get(V.Ty).Elem, true, false, false};
  }
  case Tok::Amp: {
    Lex.next();
    Value V = parseUnary();
    if (!V.LValue) {
      error("& requires an lvalue");
      return V;
    }
    TypeId Ty = TT.isFunc(V.Ty) ? TT.pointerTo(V.Ty) : TT.pointerTo(V.Ty);
    return {V.T, Ty, false, false, false};
  }
  case Tok::KwSizeof: {
    Lex.next();
    if (Lex.kind() == Tok::LParen) {
      Lexer::State S = Lex.save();
      Lex.next();
      std::optional<TypeId> Ty = tryParseBaseType();
      if (Ty) {
        Declarator D;
        parseDeclarator(*Ty, D);
        expect(Tok::RParen);
        return {tcnst(TT.sizeOf(D.Ty), TypeSuffix::U), TT.U32Ty, false,
                false, false};
      }
      Lex.restore(S);
    }
    Value V = parseUnary();
    TypeId Ty = V.Ty;
    return {tcnst(TT.sizeOf(Ty), TypeSuffix::U), TT.U32Ty, false, false,
            false};
  }
  case Tok::LParen: {
    // Possible cast.
    Lexer::State S = Lex.save();
    Lex.next();
    std::optional<TypeId> Base = tryParseBaseType();
    if (Base) {
      Declarator D;
      D.Ty = *Base;
      // Abstract declarator: pointers only (no abstract arrays/functions).
      TypeId Ty = *Base;
      while (Lex.accept(Tok::Star))
        Ty = TT.pointerTo(Ty);
      if (Lex.accept(Tok::RParen)) {
        Value V = rvalue(parseUnary());
        // Casts: truncate to sub-word types; otherwise retype.
        switch (TT.get(Ty).K) {
        case TyKind::I8:
          return {newTree(Op::SXT8, TypeSuffix::I, 0, V.T), TT.I32Ty,
                  false, false, false};
        case TyKind::U8:
          return {newTree(Op::ZXT8, TypeSuffix::I, 0, V.T), TT.I32Ty,
                  false, false, false};
        case TyKind::I16:
          return {newTree(Op::SXT16, TypeSuffix::I, 0, V.T), TT.I32Ty,
                  false, false, false};
        case TyKind::U16:
          return {newTree(Op::ZXT16, TypeSuffix::I, 0, V.T), TT.I32Ty,
                  false, false, false};
        case TyKind::Void:
          return {V.T, TT.VoidTy, false, false, false};
        default:
          return {V.T, Ty, false, false, false};
        }
      }
    }
    Lex.restore(S);
    return parsePostfix();
  }
  default:
    return parsePostfix();
  }
}

//===----------------------------------------------------------------------===//
// Binary operator combination
//===----------------------------------------------------------------------===//

Value Compiler::combine(Tok K, Value L, Value R) {
  // Comparison operators produce pending-comparison values.
  Op CmpOp = Op::NumOps;
  switch (K) {
  case Tok::EqEq: CmpOp = Op::EQ; break;
  case Tok::NotEq: CmpOp = Op::NE; break;
  case Tok::Lt: CmpOp = Op::LT; break;
  case Tok::Le: CmpOp = Op::LE; break;
  case Tok::Gt: CmpOp = Op::GT; break;
  case Tok::Ge: CmpOp = Op::GE; break;
  default: break;
  }
  if (CmpOp != Op::NumOps) {
    bool U = TT.isUnsigned(L.Ty) || TT.isUnsigned(R.Ty) ||
             TT.isPointer(L.Ty) || TT.isPointer(R.Ty);
    TypeSuffix S = U ? TypeSuffix::U : TypeSuffix::I;
    if (L.T->O == Op::CNST && R.T->O == Op::CNST) {
      int64_t A = L.T->Literal, B = R.T->Literal;
      bool Res;
      if (U) {
        auto AU = static_cast<uint32_t>(A), BU = static_cast<uint32_t>(B);
        switch (CmpOp) {
        case Op::EQ: Res = AU == BU; break;
        case Op::NE: Res = AU != BU; break;
        case Op::LT: Res = AU < BU; break;
        case Op::LE: Res = AU <= BU; break;
        case Op::GT: Res = AU > BU; break;
        default: Res = AU >= BU; break;
        }
      } else {
        auto AI = static_cast<int32_t>(A), BI = static_cast<int32_t>(B);
        switch (CmpOp) {
        case Op::EQ: Res = AI == BI; break;
        case Op::NE: Res = AI != BI; break;
        case Op::LT: Res = AI < BI; break;
        case Op::LE: Res = AI <= BI; break;
        case Op::GT: Res = AI > BI; break;
        default: Res = AI >= BI; break;
        }
      }
      return {tcnst(Res), TT.I32Ty, false, false, false};
    }
    Tree *Cmp = newTree(CmpOp, S, 0, L.T, R.T);
    return {Cmp, TT.I32Ty, false, /*IsCmp=*/true, false};
  }

  Op O;
  switch (K) {
  case Tok::Plus: O = Op::ADD; break;
  case Tok::Minus: O = Op::SUB; break;
  case Tok::Star: O = Op::MUL; break;
  case Tok::Slash: O = Op::DIV; break;
  case Tok::Percent: O = Op::MOD; break;
  case Tok::Amp: O = Op::BAND; break;
  case Tok::Pipe: O = Op::BOR; break;
  case Tok::Caret: O = Op::BXOR; break;
  case Tok::Shl: O = Op::LSH; break;
  case Tok::Shr: O = Op::RSH; break;
  default:
    ccomp_unreachable("bad binary operator");
  }

  // Pointer arithmetic.
  if (O == Op::ADD || O == Op::SUB) {
    bool LP = TT.isPointer(L.Ty), RP = TT.isPointer(R.Ty);
    if (LP && RP && O == Op::SUB) {
      uint32_t Sz = TT.sizeOf(TT.get(L.Ty).Elem);
      Tree *Diff = tbin(Op::SUB, TypeSuffix::I, L.T, R.T);
      Tree *Res = Sz > 1 ? tbin(Op::DIV, TypeSuffix::I, Diff,
                                tcnst(static_cast<int64_t>(Sz)))
                         : Diff;
      return {Res, TT.I32Ty, false, false, false};
    }
    if (LP || RP) {
      if (RP && O == Op::ADD)
        std::swap(L, R);
      if (TT.isPointer(R.Ty)) {
        error("invalid pointer arithmetic");
        return L;
      }
      uint32_t Sz = TT.sizeOf(TT.get(L.Ty).Elem);
      Tree *Scaled = tbin(Op::MUL, TypeSuffix::I, R.T,
                          tcnst(static_cast<int64_t>(Sz)));
      Tree *Res = tbin(O, TypeSuffix::P, L.T, Scaled);
      return {Res, L.Ty, false, false, false};
    }
  }

  bool U = TT.isUnsigned(L.Ty) || TT.isUnsigned(R.Ty);
  TypeSuffix S = U ? TypeSuffix::U : TypeSuffix::I;
  // Shifts: result signedness follows the left operand.
  if (O == Op::LSH || O == Op::RSH)
    S = TT.isUnsigned(L.Ty) ? TypeSuffix::U : TypeSuffix::I;
  Tree *T = tbin(O, S, L.T, R.T);
  TypeId Ty = U ? TT.U32Ty : TT.I32Ty;
  if (O == Op::LSH || O == Op::RSH)
    Ty = L.Ty;
  return {T, Ty, false, false, false};
}

//===----------------------------------------------------------------------===//
// Driver
//===----------------------------------------------------------------------===//

CompileResult Compiler::run() {
  while (Lex.kind() != Tok::End && !Failed)
    if (!parseTopLevel())
      break;
  CompileResult R;
  if (Failed) {
    R.Error = Err;
    return R;
  }
  std::string VerifyErr = ir::verify(*M);
  if (!VerifyErr.empty()) {
    R.Error = "internal: IR verification failed: " + VerifyErr;
    return R;
  }
  R.M = std::move(M);
  return R;
}

} // namespace

CompileResult minic::compile(const std::string &Source) {
  Compiler C(Source);
  return C.run();
}

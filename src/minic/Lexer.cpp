//===- minic/Lexer.cpp - C-subset lexer -----------------------------------===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//

#include "minic/Lexer.h"

#include "support/Support.h"

#include <cctype>
#include <cstring>
#include <unordered_map>

using namespace ccomp;
using namespace ccomp::minic;

const char *ccomp::minic::tokName(Tok T) {
  switch (T) {
  case Tok::End: return "<eof>";
  case Tok::Ident: return "identifier";
  case Tok::IntConst: return "integer constant";
  case Tok::StrConst: return "string literal";
  case Tok::KwVoid: return "void";
  case Tok::KwChar: return "char";
  case Tok::KwShort: return "short";
  case Tok::KwInt: return "int";
  case Tok::KwLong: return "long";
  case Tok::KwUnsigned: return "unsigned";
  case Tok::KwSigned: return "signed";
  case Tok::KwStruct: return "struct";
  case Tok::KwIf: return "if";
  case Tok::KwElse: return "else";
  case Tok::KwWhile: return "while";
  case Tok::KwFor: return "for";
  case Tok::KwDo: return "do";
  case Tok::KwReturn: return "return";
  case Tok::KwBreak: return "break";
  case Tok::KwContinue: return "continue";
  case Tok::KwSwitch: return "switch";
  case Tok::KwCase: return "case";
  case Tok::KwDefault: return "default";
  case Tok::KwSizeof: return "sizeof";
  case Tok::KwExtern: return "extern";
  case Tok::KwStatic: return "static";
  case Tok::KwConst: return "const";
  case Tok::KwGoto: return "goto";
  case Tok::KwEnum: return "enum";
  case Tok::LParen: return "(";
  case Tok::RParen: return ")";
  case Tok::LBrace: return "{";
  case Tok::RBrace: return "}";
  case Tok::LBracket: return "[";
  case Tok::RBracket: return "]";
  case Tok::Semi: return ";";
  case Tok::Comma: return ",";
  case Tok::Colon: return ":";
  case Tok::Question: return "?";
  case Tok::Assign: return "=";
  case Tok::Plus: return "+";
  case Tok::Minus: return "-";
  case Tok::Star: return "*";
  case Tok::Slash: return "/";
  case Tok::Percent: return "%";
  case Tok::Amp: return "&";
  case Tok::Pipe: return "|";
  case Tok::Caret: return "^";
  case Tok::Tilde: return "~";
  case Tok::Bang: return "!";
  case Tok::Lt: return "<";
  case Tok::Gt: return ">";
  case Tok::Le: return "<=";
  case Tok::Ge: return ">=";
  case Tok::EqEq: return "==";
  case Tok::NotEq: return "!=";
  case Tok::AmpAmp: return "&&";
  case Tok::PipePipe: return "||";
  case Tok::Shl: return "<<";
  case Tok::Shr: return ">>";
  case Tok::PlusPlus: return "++";
  case Tok::MinusMinus: return "--";
  case Tok::PlusAssign: return "+=";
  case Tok::MinusAssign: return "-=";
  case Tok::StarAssign: return "*=";
  case Tok::SlashAssign: return "/=";
  case Tok::PercentAssign: return "%=";
  case Tok::AmpAssign: return "&=";
  case Tok::PipeAssign: return "|=";
  case Tok::CaretAssign: return "^=";
  case Tok::ShlAssign: return "<<=";
  case Tok::ShrAssign: return ">>=";
  case Tok::Dot: return ".";
  case Tok::Arrow: return "->";
  }
  return "<bad token>";
}

Lexer::Lexer(const std::string &Source) : Src(Source) { next(); }

void Lexer::skipSpaceAndComments() {
  for (;;) {
    while (Pos < Src.size() &&
           std::isspace(static_cast<unsigned char>(Src[Pos]))) {
      if (Src[Pos] == '\n')
        ++Line;
      ++Pos;
    }
    if (Pos + 1 < Src.size() && Src[Pos] == '/' && Src[Pos + 1] == '/') {
      while (Pos < Src.size() && Src[Pos] != '\n')
        ++Pos;
      continue;
    }
    if (Pos + 1 < Src.size() && Src[Pos] == '/' && Src[Pos + 1] == '*') {
      Pos += 2;
      while (Pos + 1 < Src.size() &&
             !(Src[Pos] == '*' && Src[Pos + 1] == '/')) {
        if (Src[Pos] == '\n')
          ++Line;
        ++Pos;
      }
      Pos = Pos + 2 <= Src.size() ? Pos + 2 : Src.size();
      continue;
    }
    return;
  }
}

int Lexer::lexEscape() {
  // Pos is just past the backslash.
  char C = Pos < Src.size() ? Src[Pos++] : 0;
  switch (C) {
  case 'n': return '\n';
  case 't': return '\t';
  case 'r': return '\r';
  case '0': return 0;
  case 'b': return '\b';
  case 'f': return '\f';
  case 'v': return '\v';
  case 'a': return '\a';
  case '\\': return '\\';
  case '\'': return '\'';
  case '"': return '"';
  case 'x': {
    int V = 0;
    while (Pos < Src.size() &&
           std::isxdigit(static_cast<unsigned char>(Src[Pos]))) {
      char D = Src[Pos++];
      int Nib = D <= '9' ? D - '0' : (std::tolower(D) - 'a' + 10);
      V = V * 16 + Nib;
    }
    return V & 0xFF;
  }
  default:
    return C;
  }
}

void Lexer::lexNumber() {
  int64_t V = 0;
  if (Src[Pos] == '0' && Pos + 1 < Src.size() &&
      (Src[Pos + 1] == 'x' || Src[Pos + 1] == 'X')) {
    Pos += 2;
    while (Pos < Src.size() &&
           std::isxdigit(static_cast<unsigned char>(Src[Pos]))) {
      char D = Src[Pos++];
      int Nib = D <= '9' ? D - '0' : (std::tolower(D) - 'a' + 10);
      V = V * 16 + Nib;
    }
  } else {
    while (Pos < Src.size() &&
           std::isdigit(static_cast<unsigned char>(Src[Pos])))
      V = V * 10 + (Src[Pos++] - '0');
  }
  // Accept (and ignore) integer suffixes.
  while (Pos < Src.size() && (Src[Pos] == 'u' || Src[Pos] == 'U' ||
                              Src[Pos] == 'l' || Src[Pos] == 'L'))
    ++Pos;
  Kind = Tok::IntConst;
  IntValue = static_cast<int32_t>(V); // The subset's int is 32-bit.
}

void Lexer::lexCharConst() {
  ++Pos; // Opening quote.
  int V = 0;
  if (Pos < Src.size() && Src[Pos] == '\\') {
    ++Pos;
    V = lexEscape();
  } else if (Pos < Src.size()) {
    V = static_cast<unsigned char>(Src[Pos++]);
  }
  if (Pos < Src.size() && Src[Pos] == '\'')
    ++Pos;
  Kind = Tok::IntConst;
  IntValue = V;
}

void Lexer::lexString() {
  StrValue.clear();
  for (;;) {
    ++Pos; // Opening quote (or continue after concatenation).
    while (Pos < Src.size() && Src[Pos] != '"') {
      if (Src[Pos] == '\\') {
        ++Pos;
        StrValue.push_back(static_cast<char>(lexEscape()));
      } else {
        if (Src[Pos] == '\n')
          ++Line;
        StrValue.push_back(Src[Pos++]);
      }
    }
    if (Pos < Src.size())
      ++Pos; // Closing quote.
    // Adjacent string literals concatenate.
    size_t Save = Pos;
    unsigned SaveLine = Line;
    skipSpaceAndComments();
    if (Pos < Src.size() && Src[Pos] == '"')
      continue;
    Pos = Save;
    Line = SaveLine;
    break;
  }
  Kind = Tok::StrConst;
}

void Lexer::next() {
  skipSpaceAndComments();
  TokLine = Line;
  if (Pos >= Src.size()) {
    Kind = Tok::End;
    return;
  }
  char C = Src[Pos];
  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
    Text.clear();
    while (Pos < Src.size() &&
           (std::isalnum(static_cast<unsigned char>(Src[Pos])) ||
            Src[Pos] == '_'))
      Text.push_back(Src[Pos++]);
    static const std::unordered_map<std::string, Tok> Keywords = {
        {"void", Tok::KwVoid},       {"char", Tok::KwChar},
        {"short", Tok::KwShort},     {"int", Tok::KwInt},
        {"long", Tok::KwLong},       {"unsigned", Tok::KwUnsigned},
        {"signed", Tok::KwSigned},   {"struct", Tok::KwStruct},
        {"if", Tok::KwIf},           {"else", Tok::KwElse},
        {"while", Tok::KwWhile},     {"for", Tok::KwFor},
        {"do", Tok::KwDo},           {"return", Tok::KwReturn},
        {"break", Tok::KwBreak},     {"continue", Tok::KwContinue},
        {"switch", Tok::KwSwitch},   {"case", Tok::KwCase},
        {"default", Tok::KwDefault}, {"sizeof", Tok::KwSizeof},
        {"extern", Tok::KwExtern},   {"static", Tok::KwStatic},
        {"const", Tok::KwConst},     {"goto", Tok::KwGoto},
        {"enum", Tok::KwEnum}};
    auto It = Keywords.find(Text);
    Kind = It != Keywords.end() ? It->second : Tok::Ident;
    return;
  }
  if (std::isdigit(static_cast<unsigned char>(C))) {
    lexNumber();
    return;
  }
  if (C == '\'') {
    lexCharConst();
    return;
  }
  if (C == '"') {
    lexString();
    return;
  }

  auto Two = [&](char A, char B) {
    return C == A && Pos + 1 < Src.size() && Src[Pos + 1] == B;
  };
  auto Three = [&](char A, char B, char D) {
    return C == A && Pos + 2 < Src.size() && Src[Pos + 1] == B &&
           Src[Pos + 2] == D;
  };

  // Three-character operators first.
  if (Three('<', '<', '=')) { Kind = Tok::ShlAssign; Pos += 3; return; }
  if (Three('>', '>', '=')) { Kind = Tok::ShrAssign; Pos += 3; return; }

  // Two-character operators.
  struct TwoOp { char A, B; Tok T; };
  static const TwoOp TwoOps[] = {
      {'=', '=', Tok::EqEq},      {'!', '=', Tok::NotEq},
      {'<', '=', Tok::Le},        {'>', '=', Tok::Ge},
      {'&', '&', Tok::AmpAmp},    {'|', '|', Tok::PipePipe},
      {'<', '<', Tok::Shl},       {'>', '>', Tok::Shr},
      {'+', '+', Tok::PlusPlus},  {'-', '-', Tok::MinusMinus},
      {'+', '=', Tok::PlusAssign},{'-', '=', Tok::MinusAssign},
      {'*', '=', Tok::StarAssign},{'/', '=', Tok::SlashAssign},
      {'%', '=', Tok::PercentAssign}, {'&', '=', Tok::AmpAssign},
      {'|', '=', Tok::PipeAssign},{'^', '=', Tok::CaretAssign},
      {'-', '>', Tok::Arrow}};
  for (const TwoOp &Q : TwoOps)
    if (Two(Q.A, Q.B)) {
      Kind = Q.T;
      Pos += 2;
      return;
    }

  ++Pos;
  switch (C) {
  case '(': Kind = Tok::LParen; return;
  case ')': Kind = Tok::RParen; return;
  case '{': Kind = Tok::LBrace; return;
  case '}': Kind = Tok::RBrace; return;
  case '[': Kind = Tok::LBracket; return;
  case ']': Kind = Tok::RBracket; return;
  case ';': Kind = Tok::Semi; return;
  case ',': Kind = Tok::Comma; return;
  case ':': Kind = Tok::Colon; return;
  case '?': Kind = Tok::Question; return;
  case '=': Kind = Tok::Assign; return;
  case '+': Kind = Tok::Plus; return;
  case '-': Kind = Tok::Minus; return;
  case '*': Kind = Tok::Star; return;
  case '/': Kind = Tok::Slash; return;
  case '%': Kind = Tok::Percent; return;
  case '&': Kind = Tok::Amp; return;
  case '|': Kind = Tok::Pipe; return;
  case '^': Kind = Tok::Caret; return;
  case '~': Kind = Tok::Tilde; return;
  case '!': Kind = Tok::Bang; return;
  case '<': Kind = Tok::Lt; return;
  case '>': Kind = Tok::Gt; return;
  case '.': Kind = Tok::Dot; return;
  default:
    reportFatal(std::string("minic lexer: stray character '") + C + "'");
  }
}

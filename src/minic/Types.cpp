//===- minic/Types.cpp - C-subset type system ------------------------------===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//

#include "minic/Types.h"

#include "support/Support.h"

using namespace ccomp;
using namespace ccomp::minic;

TypeTable::TypeTable() {
  auto Mk = [&](TyKind K) {
    Type T;
    T.K = K;
    Types.push_back(T);
    return static_cast<TypeId>(Types.size() - 1);
  };
  VoidTy = Mk(TyKind::Void);
  I8Ty = Mk(TyKind::I8);
  U8Ty = Mk(TyKind::U8);
  I16Ty = Mk(TyKind::I16);
  U16Ty = Mk(TyKind::U16);
  I32Ty = Mk(TyKind::I32);
  U32Ty = Mk(TyKind::U32);
}

TypeId TypeTable::intern(Type T) {
  for (TypeId I = 0; I != Types.size(); ++I) {
    const Type &E = Types[I];
    if (E.K == T.K && E.Elem == T.Elem && E.ArraySize == T.ArraySize &&
        E.StructIdx == T.StructIdx && E.Params == T.Params)
      return I;
  }
  Types.push_back(std::move(T));
  return static_cast<TypeId>(Types.size() - 1);
}

TypeId TypeTable::pointerTo(TypeId Elem) {
  Type T;
  T.K = TyKind::Ptr;
  T.Elem = Elem;
  return intern(std::move(T));
}

TypeId TypeTable::arrayOf(TypeId Elem, uint32_t Count) {
  Type T;
  T.K = TyKind::Array;
  T.Elem = Elem;
  T.ArraySize = Count;
  return intern(std::move(T));
}

TypeId TypeTable::functionOf(TypeId Ret, std::vector<TypeId> Params) {
  Type T;
  T.K = TyKind::Func;
  T.Elem = Ret;
  T.Params = std::move(Params);
  return intern(std::move(T));
}

uint32_t TypeTable::structByName(const std::string &Name) {
  for (uint32_t I = 0; I != Structs.size(); ++I)
    if (Structs[I].Name == Name)
      return I;
  StructInfo SI;
  SI.Name = Name;
  Structs.push_back(std::move(SI));
  return static_cast<uint32_t>(Structs.size() - 1);
}

TypeId TypeTable::structType(uint32_t StructIdx) {
  Type T;
  T.K = TyKind::Struct;
  T.StructIdx = StructIdx;
  return intern(std::move(T));
}

uint32_t TypeTable::sizeOf(TypeId Id) const {
  const Type &T = get(Id);
  switch (T.K) {
  case TyKind::Void: return 0;
  case TyKind::I8:
  case TyKind::U8: return 1;
  case TyKind::I16:
  case TyKind::U16: return 2;
  case TyKind::I32:
  case TyKind::U32:
  case TyKind::Ptr: return 4;
  case TyKind::Array: return sizeOf(T.Elem) * T.ArraySize;
  case TyKind::Struct: return Structs[T.StructIdx].Size;
  case TyKind::Func: return 0;
  }
  ccomp_unreachable("bad type kind");
}

uint32_t TypeTable::alignOf(TypeId Id) const {
  const Type &T = get(Id);
  switch (T.K) {
  case TyKind::Void: return 1;
  case TyKind::I8:
  case TyKind::U8: return 1;
  case TyKind::I16:
  case TyKind::U16: return 2;
  case TyKind::I32:
  case TyKind::U32:
  case TyKind::Ptr: return 4;
  case TyKind::Array: return alignOf(T.Elem);
  case TyKind::Struct: return Structs[T.StructIdx].Align;
  case TyKind::Func: return 1;
  }
  ccomp_unreachable("bad type kind");
}

std::string TypeTable::name(TypeId Id) const {
  const Type &T = get(Id);
  switch (T.K) {
  case TyKind::Void: return "void";
  case TyKind::I8: return "char";
  case TyKind::U8: return "unsigned char";
  case TyKind::I16: return "short";
  case TyKind::U16: return "unsigned short";
  case TyKind::I32: return "int";
  case TyKind::U32: return "unsigned";
  case TyKind::Ptr: return name(T.Elem) + "*";
  case TyKind::Array:
    return name(T.Elem) + "[" + std::to_string(T.ArraySize) + "]";
  case TyKind::Struct: return "struct " + Structs[T.StructIdx].Name;
  case TyKind::Func: return name(T.Elem) + "(...)";
  }
  ccomp_unreachable("bad type kind");
}

//===- ir/Opcode.cpp - lcc-style tree IR operators ------------------------===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/Opcode.h"

#include "support/Support.h"

using namespace ccomp;
using namespace ccomp::ir;

const char *ir::opName(Op O) {
  switch (O) {
  case Op::CNST:   return "CNST";
  case Op::ADDRG:  return "ADDRG";
  case Op::ADDRL:  return "ADDRL";
  case Op::ADDRF:  return "ADDRF";
  case Op::INDIR:  return "INDIR";
  case Op::ASGN:   return "ASGN";
  case Op::ASGNB:  return "ASGNB";
  case Op::ADD:    return "ADD";
  case Op::SUB:    return "SUB";
  case Op::MUL:    return "MUL";
  case Op::DIV:    return "DIV";
  case Op::MOD:    return "MOD";
  case Op::BAND:   return "BAND";
  case Op::BOR:    return "BOR";
  case Op::BXOR:   return "BXOR";
  case Op::LSH:    return "LSH";
  case Op::RSH:    return "RSH";
  case Op::NEG:    return "NEG";
  case Op::BCOM:   return "BCOM";
  case Op::SXT8:   return "SXT8";
  case Op::SXT16:  return "SXT16";
  case Op::ZXT8:   return "ZXT8";
  case Op::ZXT16:  return "ZXT16";
  case Op::EQ:     return "EQ";
  case Op::NE:     return "NE";
  case Op::LT:     return "LT";
  case Op::LE:     return "LE";
  case Op::GT:     return "GT";
  case Op::GE:     return "GE";
  case Op::JUMP:   return "JUMP";
  case Op::LABEL:  return "LABEL";
  case Op::ARG:    return "ARG";
  case Op::CALL:   return "CALL";
  case Op::RET:    return "RET";
  case Op::NumOps: break;
  }
  ccomp_unreachable("bad opcode");
}

char ir::suffixChar(TypeSuffix S) {
  switch (S) {
  case TypeSuffix::C: return 'C';
  case TypeSuffix::S: return 'S';
  case TypeSuffix::I: return 'I';
  case TypeSuffix::U: return 'U';
  case TypeSuffix::P: return 'P';
  case TypeSuffix::V: return 'V';
  case TypeSuffix::B: return 'B';
  case TypeSuffix::NumSuffixes: break;
  }
  ccomp_unreachable("bad type suffix");
}

unsigned ir::numKids(Op O) {
  switch (O) {
  case Op::CNST:
  case Op::ADDRG:
  case Op::ADDRL:
  case Op::ADDRF:
  case Op::LABEL:
  case Op::JUMP:
    return 0;
  case Op::INDIR:
  case Op::NEG:
  case Op::BCOM:
  case Op::SXT8:
  case Op::SXT16:
  case Op::ZXT8:
  case Op::ZXT16:
  case Op::ARG:
  case Op::CALL: // Kid is the callee address.
    return 1;
  case Op::RET: // 1 kid unless RETV; Tree stores the actual count.
    return 1;
  case Op::ASGN:
  case Op::ASGNB:
  case Op::ADD:
  case Op::SUB:
  case Op::MUL:
  case Op::DIV:
  case Op::MOD:
  case Op::BAND:
  case Op::BOR:
  case Op::BXOR:
  case Op::LSH:
  case Op::RSH:
  case Op::EQ:
  case Op::NE:
  case Op::LT:
  case Op::LE:
  case Op::GT:
  case Op::GE:
    return 2;
  case Op::NumOps:
    break;
  }
  ccomp_unreachable("bad opcode");
}

bool ir::hasLiteral(Op O) { return litClass(O) != LitClass::None; }

LitClass ir::litClass(Op O) {
  switch (O) {
  case Op::CNST:
    return LitClass::Const;
  case Op::ADDRL:
  case Op::ADDRF:
    return LitClass::Local;
  case Op::ADDRG:
    return LitClass::Global;
  case Op::EQ:
  case Op::NE:
  case Op::LT:
  case Op::LE:
  case Op::GT:
  case Op::GE:
  case Op::JUMP:
  case Op::LABEL:
    return LitClass::Label;
  case Op::ASGNB:
    return LitClass::Size;
  default:
    return LitClass::None;
  }
}

const char *ir::litClassName(LitClass C) {
  switch (C) {
  case LitClass::None:   return "none";
  case LitClass::Const:  return "const";
  case LitClass::Local:  return "local";
  case LitClass::Global: return "global";
  case LitClass::Label:  return "label";
  case LitClass::Size:   return "size";
  case LitClass::NumClasses: break;
  }
  ccomp_unreachable("bad literal class");
}

//===- ir/Opcode.h - lcc-style tree IR operators ----------------*- C++ -*-===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Operators and type suffixes of the tree intermediate code. The set
/// mirrors lcc's IR (Fraser & Hanson), which is what the paper's wire
/// format compresses: stack-oriented typed trees whose literal operands
/// appear in square brackets, augmented with 8/16-bit width flags on
/// operators whose literals fit in one or two bytes (e.g. ADDRLP8).
///
//===----------------------------------------------------------------------===//

#ifndef CCOMP_IR_OPCODE_H
#define CCOMP_IR_OPCODE_H

#include <cstdint>

namespace ccomp {
namespace ir {

/// Generic (type-less) tree operators.
enum class Op : uint8_t {
  // Leaves carrying a literal.
  CNST,  ///< Integer constant [value].
  ADDRG, ///< Address of global [symbol index].
  ADDRL, ///< Address of local [frame offset].
  ADDRF, ///< Address of formal parameter [frame offset].

  // Memory.
  INDIR, ///< Load through address kid; sub-word loads sign-extend.
  ASGN,  ///< Store value kid through address kid.
  ASGNB, ///< Block copy [size]: *kid0 = *kid1 for size bytes.

  // Arithmetic / bitwise (two kids unless noted).
  ADD, SUB, MUL, DIV, MOD, BAND, BOR, BXOR, LSH, RSH,
  NEG,  ///< One kid.
  BCOM, ///< One kid.

  // Width adjustment (one kid), all with suffix I.
  SXT8, SXT16, ZXT8, ZXT16,

  // Control flow.
  EQ, NE, LT, LE, GT, GE, ///< Compare kids, branch to [label] if true.
  JUMP,  ///< Unconditional branch to [label].
  LABEL, ///< Label definition [label].

  // Calls.
  ARG,  ///< Push one argument for the next CALL.
  CALL, ///< Call function addressed by kid; consumes pending ARGs.
  RET,  ///< Return; one kid unless suffix V.

  NumOps
};

/// Type suffixes. Sub-word types exist only at memory operations; all
/// computation is 32-bit (C's usual promotions).
enum class TypeSuffix : uint8_t {
  C, ///< 8-bit (char).
  S, ///< 16-bit (short).
  I, ///< 32-bit signed int.
  U, ///< 32-bit unsigned int.
  P, ///< 32-bit pointer.
  V, ///< void (CALLV, RETV).
  B, ///< block (ASGNB).
  NumSuffixes
};

/// Literal-width flag the paper adds to operators whose literal operand
/// fits in 8 or 16 bits (ADDRLP8, CNSTI16, ...). Computed at serialization
/// time; semantically irrelevant.
enum class WidthFlag : uint8_t { None, W8, W16 };

/// Returns the printable name of \p O (e.g. "ADDRL").
const char *opName(Op O);

/// Returns the suffix character ('I', 'P', ...).
char suffixChar(TypeSuffix S);

/// Number of tree kids \p O takes (ARG/CALL conventions per Tree.h).
unsigned numKids(Op O);

/// True if \p O carries a literal operand.
bool hasLiteral(Op O);

/// Literal classes determine which wire-format literal stream a literal
/// joins (the paper forms "one [stream] for the literal operands
/// associated with each opcode or class of related opcodes").
enum class LitClass : uint8_t {
  None,
  Const,   ///< CNST values.
  Local,   ///< ADDRL/ADDRF frame offsets.
  Global,  ///< ADDRG symbol indices.
  Label,   ///< Branch/JUMP/LABEL label ids.
  Size,    ///< ASGNB sizes.
  NumClasses
};

/// Returns the literal stream class for \p O.
LitClass litClass(Op O);

/// Returns the name of a literal class ("const", "local", ...).
const char *litClassName(LitClass C);

} // namespace ir
} // namespace ccomp

#endif // CCOMP_IR_OPCODE_H

//===- ir/Text.cpp - Tree IR text printer and parser ----------------------===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/Text.h"

#include "support/Support.h"

#include <cctype>
#include <cstring>
#include <sstream>

using namespace ccomp;
using namespace ccomp::ir;

//===----------------------------------------------------------------------===//
// Printer
//===----------------------------------------------------------------------===//

/// Computes the width flag the paper attaches to literal-carrying
/// operators (ADDRLP8 and friends). Symbol references never get one.
static WidthFlag widthOf(const Tree *T) {
  if (!hasLiteral(T->O) || T->O == Op::ADDRG)
    return WidthFlag::None;
  int64_t V = T->Literal;
  if (V >= -128 && V <= 127)
    return WidthFlag::W8;
  if (V >= -32768 && V <= 32767)
    return WidthFlag::W16;
  return WidthFlag::None;
}

static void printOpHead(const Module &, const Tree *T, std::ostream &OS) {
  OS << opName(T->O) << suffixChar(T->Suffix);
  switch (widthOf(T)) {
  case WidthFlag::None:
    break;
  case WidthFlag::W8:
    OS << '8';
    break;
  case WidthFlag::W16:
    OS << "16";
    break;
  }
}

static void printTreeRec(const Module &M, const Tree *T, std::ostream &OS) {
  printOpHead(M, T, OS);
  if (T->hasLit()) {
    OS << '[';
    if (T->O == Op::ADDRG)
      OS << M.Symbols[static_cast<size_t>(T->Literal)].Name;
    else
      OS << T->Literal;
    OS << ']';
  }
  if (T->NKids == 0)
    return;
  OS << '(';
  for (unsigned I = 0; I != T->NKids; ++I) {
    if (I)
      OS << ',';
    printTreeRec(M, T->Kids[I], OS);
  }
  OS << ')';
}

std::string ir::printTree(const Module &M, const Tree *T) {
  std::ostringstream OS;
  printTreeRec(M, T, OS);
  return OS.str();
}

std::string ir::printModule(const Module &M) {
  std::ostringstream OS;
  OS << "module\n";
  for (const Symbol &S : M.Symbols)
    OS << "sym " << S.Name << ' ' << (S.IsFunction ? "func" : "data")
       << '\n';
  for (const Global &G : M.Globals) {
    OS << "global " << G.SymbolIndex << " size " << G.Size << " align "
       << G.Align << " init ";
    if (G.Init.empty()) {
      OS << '-';
    } else {
      static const char *Hex = "0123456789abcdef";
      for (uint8_t B : G.Init)
        OS << Hex[B >> 4] << Hex[B & 15];
    }
    OS << '\n';
  }
  for (const auto &FP : M.Functions) {
    const Function &F = *FP;
    OS << "func " << F.Name << " frame " << F.FrameSize << " params "
       << F.ParamBytes << " labels " << F.NumLabels << " slots";
    for (uint32_t SlotOff : F.ParamSlots)
      OS << ' ' << SlotOff;
    OS << '\n';
    for (const Tree *T : F.Forest) {
      OS << "  ";
      printTreeRec(M, T, OS);
      OS << '\n';
    }
    OS << "endfunc\n";
  }
  OS << "endmodule\n";
  return OS.str();
}

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

namespace {

/// Minimal recursive-descent parser over the canonical text form.
class TextParser {
public:
  TextParser(const std::string &Text, std::string &Error)
      : S(Text.c_str()), Error(Error) {}

  std::unique_ptr<Module> run() {
    auto M = std::make_unique<Module>();
    if (!expectWord("module"))
      return nullptr;
    for (;;) {
      skipSpace();
      if (tryWord("sym")) {
        std::string Name = parseName();
        std::string Kind = parseName();
        if (Name.empty() || (Kind != "func" && Kind != "data"))
          return fail("bad sym line");
        M->Symbols.push_back({Name, Kind == "func"});
        continue;
      }
      if (tryWord("global")) {
        Global G;
        G.SymbolIndex = static_cast<uint32_t>(parseInt());
        if (!expectWord("size"))
          return nullptr;
        G.Size = static_cast<uint32_t>(parseInt());
        if (!expectWord("align"))
          return nullptr;
        G.Align = static_cast<uint32_t>(parseInt());
        if (!expectWord("init"))
          return nullptr;
        skipSpace();
        if (*S == '-') {
          ++S;
        } else {
          while (std::isxdigit(static_cast<unsigned char>(S[0])) &&
                 std::isxdigit(static_cast<unsigned char>(S[1]))) {
            G.Init.push_back(
                static_cast<uint8_t>(hexVal(S[0]) * 16 + hexVal(S[1])));
            S += 2;
          }
        }
        M->Globals.push_back(std::move(G));
        continue;
      }
      if (tryWord("func")) {
        if (!parseFunction(*M))
          return nullptr;
        continue;
      }
      if (tryWord("endmodule"))
        return M;
      return fail("unexpected input at module level");
    }
  }

private:
  std::unique_ptr<Module> fail(const std::string &Msg) {
    if (Error.empty())
      Error = Msg;
    return nullptr;
  }

  void skipSpace() {
    while (*S && std::isspace(static_cast<unsigned char>(*S)))
      ++S;
  }

  static int hexVal(char C) {
    if (C >= '0' && C <= '9')
      return C - '0';
    return 10 + (C - 'a');
  }

  bool tryWord(const char *W) {
    skipSpace();
    size_t N = std::strlen(W);
    if (std::strncmp(S, W, N) != 0)
      return false;
    char After = S[N];
    if (After && !std::isspace(static_cast<unsigned char>(After)))
      return false;
    S += N;
    return true;
  }

  bool expectWord(const char *W) {
    if (tryWord(W))
      return true;
    Error = std::string("expected '") + W + "'";
    return false;
  }

  std::string parseName() {
    skipSpace();
    std::string Out;
    while (*S && (std::isalnum(static_cast<unsigned char>(*S)) ||
                  *S == '_' || *S == '$' || *S == '.'))
      Out.push_back(*S++);
    return Out;
  }

  int64_t parseInt() {
    skipSpace();
    bool Neg = false;
    if (*S == '-') {
      Neg = true;
      ++S;
    }
    int64_t V = 0;
    while (std::isdigit(static_cast<unsigned char>(*S)))
      V = V * 10 + (*S++ - '0');
    return Neg ? -V : V;
  }

  bool parseFunction(Module &M) {
    std::string Name = parseName();
    if (Name.empty()) {
      Error = "missing function name";
      return false;
    }
    Function *F = M.addFunction(Name);
    if (!expectWord("frame"))
      return false;
    F->FrameSize = static_cast<uint32_t>(parseInt());
    if (!expectWord("params"))
      return false;
    F->ParamBytes = static_cast<uint32_t>(parseInt());
    if (!expectWord("labels"))
      return false;
    F->NumLabels = static_cast<uint32_t>(parseInt());
    if (!expectWord("slots"))
      return false;
    for (;;) {
      // Slot offsets run to the end of the header line.
      const char *P = S;
      while (*P == ' ' || *P == '\t')
        ++P;
      if (!std::isdigit(static_cast<unsigned char>(*P)))
        break;
      S = P;
      F->ParamSlots.push_back(static_cast<uint32_t>(parseInt()));
    }
    for (;;) {
      skipSpace();
      if (tryWord("endfunc"))
        return true;
      Tree *T = parseTree(M, *F);
      if (!T)
        return false;
      F->Forest.push_back(T);
    }
  }

  /// Parses an operator head: generic op name + suffix char + optional
  /// width digits. Longest op-name match wins (ADDRL before ADD).
  bool parseOpHead(Op &O, TypeSuffix &Sfx) {
    skipSpace();
    std::string Word;
    const char *P = S;
    while (*P && std::isalnum(static_cast<unsigned char>(*P)))
      Word.push_back(*P++);
    // Find the longest operator name that is a prefix of Word.
    int Best = -1;
    size_t BestLen = 0;
    for (unsigned I = 0; I != static_cast<unsigned>(Op::NumOps); ++I) {
      const char *Name = opName(static_cast<Op>(I));
      size_t Len = std::strlen(Name);
      if (Word.compare(0, Len, Name) == 0 && Len > BestLen) {
        Best = static_cast<int>(I);
        BestLen = Len;
      }
    }
    if (Best < 0 || BestLen >= Word.size()) {
      Error = "unknown operator '" + Word + "'";
      return false;
    }
    O = static_cast<Op>(Best);
    char C = Word[BestLen];
    switch (C) {
    case 'C': Sfx = TypeSuffix::C; break;
    case 'S': Sfx = TypeSuffix::S; break;
    case 'I': Sfx = TypeSuffix::I; break;
    case 'U': Sfx = TypeSuffix::U; break;
    case 'P': Sfx = TypeSuffix::P; break;
    case 'V': Sfx = TypeSuffix::V; break;
    case 'B': Sfx = TypeSuffix::B; break;
    default:
      Error = "bad type suffix in '" + Word + "'";
      return false;
    }
    // Remaining characters must be a width flag; it is recomputed on
    // print, so just validate and discard.
    std::string Rest = Word.substr(BestLen + 1);
    if (!Rest.empty() && Rest != "8" && Rest != "16") {
      Error = "bad width flag in '" + Word + "'";
      return false;
    }
    S = P;
    return true;
  }

  Tree *parseTree(Module &M, Function &F) {
    Op O;
    TypeSuffix Sfx;
    if (!parseOpHead(O, Sfx))
      return nullptr;
    Tree *T = F.newTree(O, Sfx);
    if (hasLiteral(O)) {
      skipSpace();
      if (*S != '[') {
        Error = "expected '[' literal";
        return nullptr;
      }
      ++S;
      if (O == Op::ADDRG) {
        std::string Name = parseName();
        uint32_t Idx = M.findSymbol(Name);
        if (Idx == ~0u) {
          Error = "unknown symbol '" + Name + "'";
          return nullptr;
        }
        T->Literal = Idx;
      } else {
        T->Literal = parseInt();
      }
      skipSpace();
      if (*S != ']') {
        Error = "expected ']'";
        return nullptr;
      }
      ++S;
    }
    unsigned Expected = numKids(O);
    if (O == Op::RET && Sfx == TypeSuffix::V)
      Expected = 0;
    if (Expected == 0) {
      T->NKids = 0;
      return T;
    }
    skipSpace();
    if (*S != '(') {
      Error = "expected '('";
      return nullptr;
    }
    ++S;
    for (unsigned I = 0; I != Expected; ++I) {
      if (I) {
        skipSpace();
        if (*S != ',') {
          Error = "expected ','";
          return nullptr;
        }
        ++S;
      }
      Tree *Kid = parseTree(M, F);
      if (!Kid)
        return nullptr;
      T->Kids[I] = Kid;
    }
    T->NKids = static_cast<uint8_t>(Expected);
    skipSpace();
    if (*S != ')') {
      Error = "expected ')'";
      return nullptr;
    }
    ++S;
    return T;
  }

  const char *S;
  std::string &Error;
};

} // namespace

std::unique_ptr<Module> ir::parseModule(const std::string &Text,
                                        std::string &Error) {
  Error.clear();
  TextParser P(Text, Error);
  std::unique_ptr<Module> M = P.run();
  if (!M && Error.empty())
    Error = "parse error";
  return M;
}

//===- ir/Link.cpp - IR-level module linking -----------------------------------===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/Link.h"

#include "support/Support.h"

#include <cstring>

using namespace ccomp;
using namespace ccomp::ir;

/// Runtime names shared across linked units.
static bool isRuntimeName(const std::string &Name) {
  static const char *Names[] = {"print_int", "print_char", "print_str",
                                "alloc", "exit"};
  for (const char *N : Names)
    if (Name == N)
      return true;
  return false;
}

static void remapTree(Tree *T, const std::vector<uint32_t> &SymMap) {
  if (T->O == Op::ADDRG)
    T->Literal = SymMap[static_cast<size_t>(T->Literal)];
  for (unsigned I = 0; I != T->NKids; ++I)
    remapTree(T->Kids[I], SymMap);
}

std::unique_ptr<Module>
ir::linkModules(std::vector<std::unique_ptr<Module>> Modules) {
  auto Out = std::make_unique<Module>();
  std::vector<std::string> SubMains;

  for (size_t MI = 0; MI != Modules.size(); ++MI) {
    Module &M = *Modules[MI];
    std::string Prefix = "u" + std::to_string(MI) + "_";

    // Remap this module's symbol indices into the output module.
    std::vector<uint32_t> SymMap(M.Symbols.size());
    for (size_t SI = 0; SI != M.Symbols.size(); ++SI) {
      const Symbol &S = M.Symbols[SI];
      std::string NewName =
          isRuntimeName(S.Name) ? S.Name : Prefix + S.Name;
      SymMap[SI] = Out->internSymbol(NewName, S.IsFunction);
    }

    for (const Global &G : M.Globals) {
      Global NG = G;
      NG.SymbolIndex = SymMap[G.SymbolIndex];
      Out->Globals.push_back(std::move(NG));
    }

    for (std::unique_ptr<Function> &F : M.Functions) {
      if (F->Name == "main")
        SubMains.push_back(Prefix + "main");
      F->Name = Prefix + F->Name;
      for (Tree *T : F->Forest)
        remapTree(T, SymMap);
      Out->Functions.push_back(std::move(F));
    }
  }

  // Fresh main: r = 0; for each unit: r = (r + unit_main()) & 255;
  // return r.
  Function *Main = Out->addFunction("main");
  uint32_t Acc = 0; // Frame offset of the accumulator.
  Main->FrameSize = 8;
  uint32_t Tmp = 4;
  Main->Forest.push_back(Main->newTree(
      Op::ASGN, TypeSuffix::I, 0,
      Main->newTree(Op::ADDRL, TypeSuffix::P, Acc),
      Main->newTree(Op::CNST, TypeSuffix::I, 0)));
  for (const std::string &Sub : SubMains) {
    uint32_t SymIdx = Out->findSymbol(Sub);
    if (SymIdx == ~0u)
      reportFatal("link: lost sub-main symbol");
    Tree *Call = Main->newTree(
        Op::CALL, TypeSuffix::I, 0,
        Main->newTree(Op::ADDRG, TypeSuffix::P, SymIdx));
    Main->Forest.push_back(Main->newTree(
        Op::ASGN, TypeSuffix::I, 0,
        Main->newTree(Op::ADDRL, TypeSuffix::P, Tmp), Call));
    Tree *Sum = Main->newTree(
        Op::ADD, TypeSuffix::I, 0,
        Main->newTree(Op::INDIR, TypeSuffix::I, 0,
                      Main->newTree(Op::ADDRL, TypeSuffix::P, Acc)),
        Main->newTree(Op::INDIR, TypeSuffix::I, 0,
                      Main->newTree(Op::ADDRL, TypeSuffix::P, Tmp)));
    Tree *Masked = Main->newTree(Op::BAND, TypeSuffix::I, 0, Sum,
                                 Main->newTree(Op::CNST, TypeSuffix::I,
                                               255));
    Main->Forest.push_back(Main->newTree(
        Op::ASGN, TypeSuffix::I, 0,
        Main->newTree(Op::ADDRL, TypeSuffix::P, Acc), Masked));
  }
  Main->Forest.push_back(Main->newTree(
      Op::RET, TypeSuffix::I, 0,
      Main->newTree(Op::INDIR, TypeSuffix::I, 0,
                    Main->newTree(Op::ADDRL, TypeSuffix::P, Acc))));

  std::string Err = verify(*Out);
  if (!Err.empty())
    reportFatal("link: verification failed: " + Err);
  return Out;
}

//===- ir/IR.h - Tree IR: trees, functions, modules -------------*- C++ -*-===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The tree intermediate representation the wire format compresses. A
/// Module holds global data and Functions; each Function is a forest of
/// statement Trees executed in order (lcc's model). ARG trees accumulate
/// call arguments consumed by the next CALL in forest order; LABEL trees
/// define branch targets.
///
//===----------------------------------------------------------------------===//

#ifndef CCOMP_IR_IR_H
#define CCOMP_IR_IR_H

#include "ir/Opcode.h"

#include <cassert>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

namespace ccomp {
namespace ir {

/// One tree node. Nodes are owned by their Function's arena; Tree pointers
/// stay valid for the Function's lifetime.
struct Tree {
  Op O = Op::CNST;
  TypeSuffix Suffix = TypeSuffix::I;
  int64_t Literal = 0; ///< Value / frame offset / symbol index / label id.
  Tree *Kids[2] = {nullptr, nullptr};
  uint8_t NKids = 0;

  bool hasLit() const { return hasLiteral(O); }
};

/// A symbol visible at module scope (function or data).
struct Symbol {
  std::string Name;
  bool IsFunction = false;
};

/// A global data object: size/alignment plus optional initializer bytes
/// (zero-initialized when Init is empty and not a string constant).
struct Global {
  uint32_t SymbolIndex = 0;
  uint32_t Size = 0;
  uint32_t Align = 4;
  std::vector<uint8_t> Init; ///< Empty means zero-initialized.
};

/// A function: parameter/frame layout plus the statement forest.
class Function {
public:
  explicit Function(std::string Name) : Name(std::move(Name)) {}

  /// Allocates a node in this function's arena.
  Tree *newTree(Op O, TypeSuffix S, int64_t Literal = 0, Tree *K0 = nullptr,
                Tree *K1 = nullptr) {
    Arena.emplace_back();
    Tree &T = Arena.back();
    T.O = O;
    T.Suffix = S;
    T.Literal = Literal;
    T.Kids[0] = K0;
    T.Kids[1] = K1;
    T.NKids = K1 ? 2 : (K0 ? 1 : 0);
    return &T;
  }

  const std::string &name() const { return Name; }

  std::string Name;
  uint32_t FrameSize = 0;  ///< Bytes of locals (sp-relative).
  uint32_t ParamBytes = 0; ///< Bytes of incoming parameters.
  uint32_t NumLabels = 0;  ///< Label ids are in [0, NumLabels).
  /// Frame offsets where the code generator must store the register-passed
  /// parameters (parameter i in ParamSlots[i] for i < ParamSlots.size());
  /// remaining parameters arrive on the stack and are addressed by ADDRF.
  std::vector<uint32_t> ParamSlots;
  std::vector<Tree *> Forest;

private:
  std::deque<Tree> Arena;
};

/// A whole program in tree IR.
class Module {
public:
  /// Returns the index of symbol \p Name, interning it if new.
  uint32_t internSymbol(const std::string &Name, bool IsFunction) {
    for (uint32_t I = 0; I != Symbols.size(); ++I)
      if (Symbols[I].Name == Name) {
        Symbols[I].IsFunction |= IsFunction;
        return I;
      }
    Symbols.push_back({Name, IsFunction});
    return static_cast<uint32_t>(Symbols.size() - 1);
  }

  /// Returns the symbol index of \p Name or ~0u if absent.
  uint32_t findSymbol(const std::string &Name) const {
    for (uint32_t I = 0; I != Symbols.size(); ++I)
      if (Symbols[I].Name == Name)
        return I;
    return ~0u;
  }

  Function *addFunction(const std::string &Name) {
    internSymbol(Name, /*IsFunction=*/true);
    Functions.push_back(std::make_unique<Function>(Name));
    return Functions.back().get();
  }

  Function *findFunction(const std::string &Name) {
    for (auto &F : Functions)
      if (F->Name == Name)
        return F.get();
    return nullptr;
  }

  std::vector<Symbol> Symbols;
  std::vector<Global> Globals;
  std::vector<std::unique_ptr<Function>> Functions;
};

/// Counts tree nodes in a function's forest.
unsigned countNodes(const Function &F);

/// Counts tree nodes in a whole module.
unsigned countNodes(const Module &M);

/// Structural validation: kid counts, literal presence, label ranges,
/// symbol indices. Returns an empty string on success, else a diagnostic.
std::string verify(const Module &M);

} // namespace ir
} // namespace ccomp

#endif // CCOMP_IR_IR_H

//===- ir/Text.h - Tree IR text printer and parser --------------*- C++ -*-===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A canonical, re-parseable text form of the tree IR, printed in the
/// paper's notation: operators with type suffixes and width flags, literal
/// operands in square brackets, e.g.
///   ASGNI(ADDRLP8[72],SUBI(INDIRI(ADDRLP8[72]),CNSTI8[1]))
/// Round-tripping (print -> parse -> print) is byte-identical, which the
/// wire-format tests use as their identity oracle.
///
//===----------------------------------------------------------------------===//

#ifndef CCOMP_IR_TEXT_H
#define CCOMP_IR_TEXT_H

#include "ir/IR.h"

#include <memory>
#include <string>

namespace ccomp {
namespace ir {

/// Prints one tree in the paper's notation (no trailing newline).
std::string printTree(const Module &M, const Tree *T);

/// Prints a whole module in the canonical text form.
std::string printModule(const Module &M);

/// Parses text produced by printModule. Returns nullptr and sets \p Error
/// on malformed input.
std::unique_ptr<Module> parseModule(const std::string &Text,
                                    std::string &Error);

} // namespace ir
} // namespace ccomp

#endif // CCOMP_IR_TEXT_H

//===- ir/IR.cpp - Tree IR verification and counting ----------------------===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/IR.h"

#include <functional>
#include <sstream>

using namespace ccomp;
using namespace ccomp::ir;

static unsigned countTree(const Tree *T) {
  if (!T)
    return 0;
  unsigned N = 1;
  for (unsigned I = 0; I != T->NKids; ++I)
    N += countTree(T->Kids[I]);
  return N;
}

unsigned ir::countNodes(const Function &F) {
  unsigned N = 0;
  for (const Tree *T : F.Forest)
    N += countTree(T);
  return N;
}

unsigned ir::countNodes(const Module &M) {
  unsigned N = 0;
  for (const auto &F : M.Functions)
    N += countNodes(*F);
  return N;
}

std::string ir::verify(const Module &M) {
  std::ostringstream Err;

  std::function<bool(const Function &, const Tree *)> CheckTree =
      [&](const Function &F, const Tree *T) -> bool {
    if (!T) {
      Err << "null tree in " << F.Name;
      return false;
    }
    unsigned Expected = numKids(T->O);
    // RET may have zero kids when returning void.
    if (T->O == Op::RET && T->Suffix == TypeSuffix::V)
      Expected = 0;
    if (T->NKids != Expected) {
      Err << F.Name << ": " << opName(T->O) << " has " << unsigned(T->NKids)
          << " kids, expected " << Expected;
      return false;
    }
    switch (litClass(T->O)) {
    case LitClass::Label:
      if (T->Literal < 0 ||
          static_cast<uint32_t>(T->Literal) >= F.NumLabels) {
        Err << F.Name << ": label " << T->Literal << " out of range";
        return false;
      }
      break;
    case LitClass::Global:
      if (T->Literal < 0 ||
          static_cast<size_t>(T->Literal) >= M.Symbols.size()) {
        Err << F.Name << ": symbol index " << T->Literal << " out of range";
        return false;
      }
      break;
    default:
      break;
    }
    for (unsigned I = 0; I != T->NKids; ++I)
      if (!CheckTree(F, T->Kids[I]))
        return false;
    return true;
  };

  for (const auto &FP : M.Functions) {
    const Function &F = *FP;
    for (const Tree *T : F.Forest)
      if (!CheckTree(F, T))
        return Err.str();
  }
  for (const Global &G : M.Globals) {
    if (G.SymbolIndex >= M.Symbols.size())
      return "global with bad symbol index";
    if (!G.Init.empty() && G.Init.size() > G.Size)
      return "global initializer larger than object";
  }
  return std::string();
}

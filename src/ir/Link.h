//===- ir/Link.h - IR-level module linking ----------------------*- C++ -*-===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Links several tree-IR modules into one program: every module's
/// symbols are prefixed to avoid collisions, each module's main becomes
/// an ordinary function, and a fresh main calls them in order,
/// accumulating their results. Used to build suite-scale benchmark
/// inputs out of the hand-written corpus programs.
///
//===----------------------------------------------------------------------===//

#ifndef CCOMP_IR_LINK_H
#define CCOMP_IR_LINK_H

#include "ir/IR.h"

#include <memory>
#include <string>
#include <vector>

namespace ccomp {
namespace ir {

/// Links \p Modules into a single module. Module i's symbols are renamed
/// "u<i>_<name>" except for well-known runtime functions (print_int,
/// print_char, print_str, alloc, exit), which stay shared. The generated
/// main returns the accumulated exit values masked to a byte.
std::unique_ptr<Module>
linkModules(std::vector<std::unique_ptr<Module>> Modules);

} // namespace ir
} // namespace ccomp

#endif // CCOMP_IR_LINK_H

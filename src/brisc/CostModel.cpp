//===- brisc/CostModel.cpp - Decompressor working-set cost (W) ---------------===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//

#include "brisc/CostModel.h"

#include "support/Support.h"

using namespace ccomp;
using namespace ccomp::brisc;
using vm::VMOp;

/// Per-opcode native sequence bytes. CISC numbers approximate Pentium
/// encodings (reg/mem forms, imm32 where needed); RISC numbers
/// approximate PowerPC 601 (4-byte words, low/high immediate pairs,
/// explicit compare + branch). The paper's own calibration point:
/// "enter" costs 17 bytes on Pentium and 28 on the 601.
static unsigned opBytes(VMOp Op, Target T) {
  bool C = T == Target::CISC;
  switch (Op) {
  case VMOp::LD_B: case VMOp::LD_BU: case VMOp::LD_H: case VMOp::LD_HU:
  case VMOp::LD_W:
    return C ? 4 : 8;
  case VMOp::ST_B: case VMOp::ST_H: case VMOp::ST_W:
    return C ? 4 : 8;
  case VMOp::ADD: case VMOp::SUB: case VMOp::AND: case VMOp::OR:
  case VMOp::XOR:
    return C ? 3 : 4;
  case VMOp::MUL:
    return C ? 4 : 4;
  case VMOp::DIV: case VMOp::DIVU: case VMOp::REM: case VMOp::REMU:
    return C ? 8 : 12; // Sign fixups / sequence around the divide.
  case VMOp::SLL: case VMOp::SRL: case VMOp::SRA:
    return C ? 4 : 4;
  case VMOp::ADDI: case VMOp::ANDI: case VMOp::ORI: case VMOp::XORI:
    return C ? 4 : 8;
  case VMOp::MULI:
    return C ? 6 : 8;
  case VMOp::SLLI: case VMOp::SRLI: case VMOp::SRAI:
    return C ? 3 : 4;
  case VMOp::MOV:
    return C ? 2 : 4;
  case VMOp::NEG: case VMOp::NOT:
    return C ? 2 : 4;
  case VMOp::SXTB: case VMOp::SXTH: case VMOp::ZXTB: case VMOp::ZXTH:
    return C ? 3 : 4;
  case VMOp::LI:
    return C ? 5 : 8;
  case VMOp::BEQ: case VMOp::BNE: case VMOp::BLT: case VMOp::BLE:
  case VMOp::BGT: case VMOp::BGE: case VMOp::BLTU: case VMOp::BLEU:
  case VMOp::BGTU: case VMOp::BGEU:
    return C ? 5 : 8; // cmp + jcc / cmp + bc.
  case VMOp::BEQI: case VMOp::BNEI: case VMOp::BLTI: case VMOp::BLEI:
  case VMOp::BGTI: case VMOp::BGEI: case VMOp::BLTUI: case VMOp::BLEUI:
  case VMOp::BGTUI: case VMOp::BGEUI:
    return C ? 7 : 12;
  case VMOp::JMP:
    return C ? 5 : 4;
  case VMOp::CALL:
    return C ? 5 : 4;
  case VMOp::RJR:
    return C ? 2 : 8; // mtlr + blr on the RISC side.
  case VMOp::ENTER:
    return C ? 17 : 28; // The paper's calibration numbers.
  case VMOp::EXIT:
    return C ? 12 : 20;
  case VMOp::SPILL: case VMOp::RELOAD:
    return C ? 4 : 8;
  case VMOp::EPI:
    return C ? 20 : 36;
  case VMOp::MCPY:
    return C ? 15 : 28;
  case VMOp::MSET:
    return C ? 12 : 24;
  case VMOp::SYS:
    return C ? 10 : 16;
  case VMOp::NumOps:
    break;
  }
  ccomp_unreachable("bad opcode in cost model");
}

unsigned brisc::nativeSeqBytes(const Pattern &P, Target T) {
  unsigned Bytes = 0;
  for (const SpecInstr &E : P.Elems)
    Bytes += opBytes(E.Op, T);
  return Bytes;
}

unsigned brisc::workingSetCost(const Pattern &P) {
  unsigned A = nativeSeqBytes(P, Target::CISC);
  unsigned B = nativeSeqBytes(P, Target::RISC);
  // Average of the two targets plus the fixed table-entry header
  // (pointer + length in the decompressor's dispatch table).
  return (A + B) / 2 + 6;
}

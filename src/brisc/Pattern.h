//===- brisc/Pattern.h - BRISC instruction patterns -------------*- C++ -*-===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// BRISC dictionary patterns: a pattern is a sequence of base
/// instructions (sequences longer than one arise from opcode
/// combination), each with a mask of operand-specialized fields whose
/// values are burned in, and a width class for every remaining field
/// (width narrowing is how the paper's -x4 scaled forms arise).
/// Patterns match concrete instruction sequences; matching instances are
/// encoded as one opcode byte plus the packed unspecified operands.
///
//===----------------------------------------------------------------------===//

#ifndef CCOMP_BRISC_PATTERN_H
#define CCOMP_BRISC_PATTERN_H

#include "support/ByteIO.h"
#include "vm/ISA.h"

#include <cstdint>
#include <string>
#include <vector>

namespace ccomp {
namespace brisc {

/// Encoding width of one unspecified operand field.
enum class Width : uint8_t {
  Nib,    ///< 4 bits (registers; immediates 0..15).
  NibX4,  ///< 4 bits, value scaled by 4 (the paper's -x4 suffix).
  B1,     ///< 1 byte, signed -128..127.
  B1X4,   ///< 1 byte, signed, scaled by 4.
  B2,     ///< 2 bytes, signed (also labels and function indices).
  B4,     ///< 4 bytes.
};

/// Returns true if \p V is representable in width \p W.
bool fitsWidth(Width W, int64_t V);

/// Bytes (possibly fractional nibbles -> use packing) of a width.
unsigned widthNibbles(Width W);

/// One element of a pattern: a base opcode, specialization mask, burned
/// values, and widths for the unspecified fields.
struct SpecInstr {
  vm::VMOp Op = vm::VMOp::NumOps;
  uint8_t SpecMask = 0;                 ///< Bit i: field i specialized.
  int32_t SpecVals[vm::MaxFields] = {0, 0, 0};
  Width Widths[vm::MaxFields] = {Width::B4, Width::B4, Width::B4};

  bool specialized(unsigned F) const { return (SpecMask >> F) & 1; }
};

/// A dictionary pattern.
struct Pattern {
  std::vector<SpecInstr> Elems;

  /// True if no element can transfer control (such a pattern may be the
  /// first part of an opcode combination).
  bool allDataOps() const;

  /// True when the LAST element may transfer control and all earlier
  /// elements are data ops -- the invariant every pattern must satisfy.
  bool wellFormed() const;

  /// Matches a concrete instruction sequence starting at \p Seq.
  bool matches(const vm::Instr *Seq, size_t N) const;

  /// Packed operand byte count for any matching instance.
  unsigned operandBytes() const;

  /// Total encoded size of one instance (1 opcode byte + operands).
  unsigned instanceBytes() const { return 1 + operandBytes(); }

  /// Serialized dictionary-entry size in bytes.
  unsigned dictEntryBytes() const;

  /// Canonical byte key for hashing/deduplication.
  std::string key() const;

  void serialize(ByteWriter &W) const;
  /// Throws DecodeError on a corrupt dictionary entry.
  static Pattern deserialize(ByteReader &R);

  /// Builds the base (fully unspecified) pattern of \p Op, with default
  /// widths: registers Nib, immediates B4, labels/functions B2.
  static Pattern base(vm::VMOp Op);

  /// Human-readable form in the paper's notation, e.g.
  /// "<[ld.iw n0,*(sp)],[mov.i *,*]>".
  std::string str() const;
};

/// Packs the unspecified operand values of \p P (matching \p Seq) into
/// bytes; nibble-width fields pack two per byte.
void packOperands(const Pattern &P, const vm::Instr *Seq, ByteWriter &W);

/// Unpacks operands and reconstructs the concrete instruction sequence.
/// Returns the number of bytes consumed. Throws DecodeError on
/// truncated operand bytes.
size_t unpackOperands(const Pattern &P, const uint8_t *Bytes, size_t N,
                      std::vector<vm::Instr> &Out);

} // namespace brisc
} // namespace ccomp

#endif // CCOMP_BRISC_PATTERN_H

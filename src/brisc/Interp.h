//===- brisc/Interp.h - In-place BRISC interpretation -----------*- C++ -*-===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Direct interpretation of BRISC code without decompression: each step
/// decodes one pattern instance at the current byte offset (opcode byte
/// through the Markov context, packed operands inline) and executes its
/// elements against the shared Machine state. Branches target block-
/// start byte offsets; the working set is the dictionary plus the code
/// pages actually touched, which is what the paper's ">40% working set
/// reduction" measures.
///
//===----------------------------------------------------------------------===//

#ifndef CCOMP_BRISC_INTERP_H
#define CCOMP_BRISC_INTERP_H

#include "brisc/Brisc.h"
#include "vm/Machine.h"

namespace ccomp {
namespace brisc {

/// Interprets \p B in place. RunOptions' Layout field is ignored; page
/// accounting uses the BRISC image layout (dictionary pages count as
/// always-resident).
vm::RunResult interpret(const BriscProgram &B,
                        vm::RunOptions Opts = vm::RunOptions());

} // namespace brisc
} // namespace ccomp

#endif // CCOMP_BRISC_INTERP_H

//===- brisc/Compress.cpp - BRISC greedy dictionary construction -------------===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//
//
// The compressor scans the program repeatedly. Each pass generates
// candidate patterns (one-field operand specializations, width
// narrowings, and combinations of adjacent slots), estimates each
// candidate's program-size reduction P and decompressor-table cost W,
// adopts the K best candidates with positive benefit B = P - W, and
// rewrites the program to use them. It stops after a pass that adopts
// fewer than K patterns. Finally the slot stream is emitted through the
// order-1 Markov opcode coder.
//
//===----------------------------------------------------------------------===//

#include "brisc/Brisc.h"
#include "brisc/CostModel.h"

#include "support/Support.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

using namespace ccomp;
using namespace ccomp::brisc;
using vm::FieldKind;
using vm::Instr;
using vm::VMOp;

namespace {

/// A run of concrete instructions currently represented by one pattern.
struct Slot {
  uint32_t PatId = 0;
  uint32_t Begin = 0; ///< Index of the first concrete instruction.
  uint32_t Count = 1;
};

/// Per-function compression state.
struct FuncState {
  std::string Name;
  std::vector<Instr> Concrete;
  std::vector<uint32_t> LabelPos;
  std::vector<Slot> Slots;
  std::vector<uint8_t> BBStart; ///< Per concrete instruction.
};

struct Candidate {
  Pattern P;
  int64_t GrossSave = 0;
  uint32_t Uses = 0;
};

class Compressor {
public:
  Compressor(const vm::VMProgram &Prog, const CompressOptions &Opts,
             CompressStats *Stats)
      : Prog(Prog), Opts(Opts), Stats(Stats) {}

  BriscProgram run();

private:
  void initState();
  void rewriteEpilogues(FuncState &FS);
  void buildSlots(FuncState &FS);
  unsigned runPass();
  void generateFromSlot(FuncState &FS, size_t SlotIdx);
  void addCandidate(Pattern P, int64_t Save);
  void adopt(const Pattern &P);
  void rewriteCombination(uint32_t PatId);
  void rewriteSpecializations(const std::vector<uint32_t> &NewIds);
  void compactDictionary();
  void emit(BriscProgram &Out);

  unsigned slotBytes(const Slot &S) const {
    return Pats[S.PatId].instanceBytes();
  }

  /// One-field value specializations of \p P rooted at the concrete
  /// sequence \p Seq (for combination pair generation).
  std::vector<Pattern> oneFieldSpecs(const Pattern &P, const Instr *Seq);

  const vm::VMProgram &Prog;
  const CompressOptions &Opts;
  CompressStats *Stats;

  std::vector<FuncState> Funcs;
  std::vector<Pattern> Pats;
  std::unordered_map<std::string, uint32_t> PatIds;
  std::unordered_set<std::string> EverTested;
  unsigned EffectiveK = 20;

  std::unordered_map<std::string, Candidate> Cands;
};

//===----------------------------------------------------------------------===//
// Setup
//===----------------------------------------------------------------------===//

void Compressor::initState() {
  // Base dictionary: one fully general pattern per opcode.
  for (unsigned I = 0; I != static_cast<unsigned>(VMOp::NumOps); ++I) {
    Pattern P = Pattern::base(static_cast<VMOp>(I));
    PatIds[P.key()] = static_cast<uint32_t>(Pats.size());
    Pats.push_back(std::move(P));
  }

  for (const vm::VMFunction &F : Prog.Functions) {
    FuncState FS;
    FS.Name = F.Name;
    FS.Concrete = F.Code;
    FS.LabelPos = F.LabelPos;
    if (Opts.EnableEpi)
      rewriteEpilogues(FS);
    FS.BBStart.assign(FS.Concrete.size() + 1, 0);
    if (!FS.Concrete.empty())
      FS.BBStart[0] = 1;
    for (uint32_t L : FS.LabelPos)
      FS.BBStart[L] = 1;
    for (size_t I = 0; I + 1 < FS.Concrete.size(); ++I)
      if (FS.Concrete[I].Op == VMOp::CALL)
        FS.BBStart[I + 1] = 1; // Return addresses must be decodable.
    buildSlots(FS);
    Funcs.push_back(std::move(FS));
  }
}

void Compressor::rewriteEpilogues(FuncState &FS) {
  // Match the code generator's epilogue (reload*, exit?, rjr ra) at the
  // function's end against the prologue metadata, and fold it into the
  // single special-case macro-instruction "epi" (the paper's only
  // hand-added dictionary entry).
  vm::VMFunction Tmp;
  Tmp.Code = FS.Concrete;
  vm::FuncMeta Meta = vm::deriveMeta(Tmp);

  size_t N = FS.Concrete.size();
  if (N == 0 || FS.Concrete[N - 1].Op != VMOp::RJR ||
      FS.Concrete[N - 1].Rd != vm::RA)
    return;
  size_t EpiLen = 1;
  size_t Pos = N - 1;
  uint32_t Frame = Meta.FrameSize;
  if (Frame != 0) {
    if (Pos == 0 || FS.Concrete[Pos - 1].Op != VMOp::EXIT ||
        FS.Concrete[Pos - 1].Imm != static_cast<int32_t>(Frame))
      return;
    --Pos;
    ++EpiLen;
  }
  // Reloads, one per prologue save (any order; verify the set).
  std::set<std::pair<uint8_t, int32_t>> Want;
  for (const vm::FuncMeta::Save &S : Meta.Saves)
    Want.insert({S.Reg, S.Off});
  size_t NeedReloads = Want.size();
  for (size_t I = 0; I != NeedReloads; ++I) {
    if (Pos == 0 || FS.Concrete[Pos - 1].Op != VMOp::RELOAD)
      return;
    --Pos;
    ++EpiLen;
    if (!Want.erase({FS.Concrete[Pos].Rd, FS.Concrete[Pos].Imm}))
      return;
  }
  if (!Want.empty())
    return;
  // Labels may point at the epilogue start but not inside it.
  for (uint32_t L : FS.LabelPos)
    if (L > Pos && L < N)
      return;
  FS.Concrete.resize(Pos);
  Instr Epi;
  Epi.Op = VMOp::EPI;
  FS.Concrete.push_back(Epi);
  for (uint32_t &L : FS.LabelPos)
    if (L >= FS.Concrete.size())
      L = static_cast<uint32_t>(FS.Concrete.size() - 1);
}

void Compressor::buildSlots(FuncState &FS) {
  FS.Slots.clear();
  for (uint32_t I = 0; I != FS.Concrete.size(); ++I) {
    Slot S;
    S.PatId = static_cast<uint32_t>(FS.Concrete[I].Op);
    S.Begin = I;
    S.Count = 1;
    FS.Slots.push_back(S);
  }
}

//===----------------------------------------------------------------------===//
// Candidate generation
//===----------------------------------------------------------------------===//

std::vector<Pattern> Compressor::oneFieldSpecs(const Pattern &P,
                                               const Instr *Seq) {
  std::vector<Pattern> Out;
  for (size_t E = 0; E != P.Elems.size(); ++E) {
    const SpecInstr &El = P.Elems[E];
    unsigned NF = vm::numFields(El.Op);
    const FieldKind *FK = vm::fieldKinds(El.Op);
    for (unsigned F = 0; F != NF; ++F) {
      if (El.specialized(F))
        continue;
      if (FK[F] == FieldKind::Label)
        continue; // Branch targets are never burned in.
      Pattern Q = P;
      SpecInstr &QE = Q.Elems[E];
      QE.SpecMask |= 1u << F;
      QE.SpecVals[F] = static_cast<int32_t>(vm::getField(Seq[E], F));
      Out.push_back(std::move(Q));
    }
  }
  return Out;
}

void Compressor::addCandidate(Pattern P, int64_t Save) {
  if (Save <= 0)
    return;
  std::string Key = P.key();
  if (PatIds.count(Key))
    return; // Already in the dictionary.
  auto It = Cands.find(Key);
  if (It == Cands.end()) {
    Candidate C;
    C.P = std::move(P);
    C.GrossSave = Save;
    C.Uses = 1;
    bool New = EverTested.insert(Key).second;
    if (New && Stats)
      ++Stats->CandidatesTested;
    Cands.emplace(std::move(Key), std::move(C));
    return;
  }
  It->second.GrossSave += Save;
  ++It->second.Uses;
}

void Compressor::generateFromSlot(FuncState &FS, size_t SlotIdx) {
  Slot &S = FS.Slots[SlotIdx];
  const Pattern &P = Pats[S.PatId];
  const Instr *Seq = FS.Concrete.data() + S.Begin;
  unsigned Cur = P.instanceBytes();

  if (Opts.EnableSpecialization) {
    // One-field value specializations.
    for (size_t E = 0; E != P.Elems.size(); ++E) {
      const SpecInstr &El = P.Elems[E];
      unsigned NF = vm::numFields(El.Op);
      const FieldKind *FK = vm::fieldKinds(El.Op);
      for (unsigned F = 0; F != NF; ++F) {
        if (El.specialized(F) || FK[F] == FieldKind::Label)
          continue;
        Pattern Q = P;
        SpecInstr &QE = Q.Elems[E];
        QE.SpecMask |= 1u << F;
        QE.SpecVals[F] = static_cast<int32_t>(vm::getField(Seq[E], F));
        unsigned NewBytes = Q.instanceBytes();
        addCandidate(std::move(Q), static_cast<int64_t>(Cur) - NewBytes);
      }
    }
    // Width narrowings of immediate fields.
    for (size_t E = 0; E != P.Elems.size(); ++E) {
      const SpecInstr &El = P.Elems[E];
      unsigned NF = vm::numFields(El.Op);
      const FieldKind *FK = vm::fieldKinds(El.Op);
      for (unsigned F = 0; F != NF; ++F) {
        if (El.specialized(F) || FK[F] != FieldKind::Imm)
          continue;
        int64_t V = vm::getField(Seq[E], F);
        static const Width Narrower[] = {Width::B2, Width::B1X4,
                                         Width::B1, Width::NibX4,
                                         Width::Nib};
        for (Width W : Narrower) {
          if (widthNibbles(W) >= widthNibbles(El.Widths[F]))
            continue;
          if (!fitsWidth(W, V))
            continue;
          Pattern Q = P;
          Q.Elems[E].Widths[F] = W;
          unsigned NewBytes = Q.instanceBytes();
          addCandidate(std::move(Q), static_cast<int64_t>(Cur) - NewBytes);
        }
      }
    }
  }

  if (!Opts.EnableCombination || SlotIdx + 1 >= FS.Slots.size())
    return;
  const Pattern &PA = P;
  Slot &T = FS.Slots[SlotIdx + 1];
  if (FS.BBStart[T.Begin])
    return; // Never swallow a block boundary.
  if (!PA.allDataOps())
    return; // Control flow may only end a pattern.
  const Pattern &PB = Pats[T.PatId];
  if (PA.Elems.size() + PB.Elems.size() > Opts.MaxCombinedElems)
    return;
  const Instr *SeqB = FS.Concrete.data() + T.Begin;
  unsigned CurPair = Cur + PB.instanceBytes();

  std::vector<Pattern> As = oneFieldSpecs(PA, Seq);
  As.push_back(PA);
  std::vector<Pattern> Bs = oneFieldSpecs(PB, SeqB);
  Bs.push_back(PB);
  for (const Pattern &A : As) {
    for (const Pattern &B : Bs) {
      Pattern Q;
      Q.Elems = A.Elems;
      Q.Elems.insert(Q.Elems.end(), B.Elems.begin(), B.Elems.end());
      unsigned NewBytes = Q.instanceBytes();
      addCandidate(std::move(Q),
                   static_cast<int64_t>(CurPair) - NewBytes);
    }
  }
}

//===----------------------------------------------------------------------===//
// Adoption and rewriting
//===----------------------------------------------------------------------===//

void Compressor::adopt(const Pattern &P) {
  PatIds[P.key()] = static_cast<uint32_t>(Pats.size());
  Pats.push_back(P);
}

void Compressor::rewriteCombination(uint32_t PatId) {
  const Pattern &P = Pats[PatId];
  size_t Len = P.Elems.size();
  for (FuncState &FS : Funcs) {
    std::vector<Slot> NewSlots;
    NewSlots.reserve(FS.Slots.size());
    size_t I = 0;
    while (I < FS.Slots.size()) {
      const Slot &S = FS.Slots[I];
      // Try to cover slots I..J whose concrete run matches P exactly.
      bool Merged = false;
      if (S.Begin + Len <= FS.Concrete.size() &&
          P.matches(FS.Concrete.data() + S.Begin, Len)) {
        // The run must align with slot boundaries and stay inside the
        // basic block.
        size_t J = I;
        uint32_t Covered = 0;
        unsigned CurBytes = 0;
        bool Aligns = true;
        while (Covered < Len && J < FS.Slots.size()) {
          if (J != I && FS.BBStart[FS.Slots[J].Begin]) {
            Aligns = false;
            break;
          }
          Covered += FS.Slots[J].Count;
          CurBytes += slotBytes(FS.Slots[J]);
          ++J;
        }
        if (Aligns && Covered == Len &&
            P.instanceBytes() < CurBytes) {
          Slot NS;
          NS.PatId = PatId;
          NS.Begin = S.Begin;
          NS.Count = static_cast<uint32_t>(Len);
          NewSlots.push_back(NS);
          I = J;
          Merged = true;
        }
      }
      if (!Merged) {
        NewSlots.push_back(S);
        ++I;
      }
    }
    FS.Slots = std::move(NewSlots);
  }
}

void Compressor::rewriteSpecializations(const std::vector<uint32_t> &NewIds) {
  // Index the new patterns by (first opcode, element count).
  std::map<std::pair<uint8_t, size_t>, std::vector<uint32_t>> Index;
  for (uint32_t Id : NewIds) {
    const Pattern &P = Pats[Id];
    Index[{static_cast<uint8_t>(P.Elems[0].Op), P.Elems.size()}]
        .push_back(Id);
  }
  for (FuncState &FS : Funcs) {
    for (Slot &S : FS.Slots) {
      auto It = Index.find({static_cast<uint8_t>(
                                FS.Concrete[S.Begin].Op),
                            S.Count});
      if (It == Index.end())
        continue;
      unsigned Best = slotBytes(S);
      uint32_t BestId = S.PatId;
      for (uint32_t Id : It->second) {
        const Pattern &P = Pats[Id];
        if (P.instanceBytes() >= Best)
          continue;
        if (!P.matches(FS.Concrete.data() + S.Begin, S.Count))
          continue;
        Best = P.instanceBytes();
        BestId = Id;
      }
      S.PatId = BestId;
    }
  }
}

unsigned Compressor::runPass() {
  Cands.clear();
  for (FuncState &FS : Funcs)
    for (size_t I = 0; I != FS.Slots.size(); ++I)
      generateFromSlot(FS, I);

  // Rank by benefit.
  struct Ranked {
    int64_t B;
    const Candidate *C;
  };
  std::vector<Ranked> Ranking;
  Ranking.reserve(Cands.size());
  for (const auto &[Key, C] : Cands) {
    (void)Key;
    // An adopted pattern also grows the Markov successor tables by at
    // least one entry; 3 bytes approximates the serialized id.
    int64_t P = C.GrossSave - C.P.dictEntryBytes() - 3;
    int64_t B = Opts.AbundantMemory
                    ? P
                    : P - static_cast<int64_t>(workingSetCost(C.P));
    if (B > 0)
      Ranking.push_back({B, &C});
  }
  std::sort(Ranking.begin(), Ranking.end(),
            [](const Ranked &A, const Ranked &B) {
              if (A.B != B.B)
                return A.B > B.B;
              return A.C->P.key() < B.C->P.key(); // Deterministic ties.
            });

  unsigned Adopted = 0;
  std::vector<uint32_t> NewCombined, NewIds;
  for (const Ranked &R : Ranking) {
    if (Adopted == EffectiveK)
      break;
    uint32_t Id = static_cast<uint32_t>(Pats.size());
    adopt(R.C->P);
    NewIds.push_back(Id);
    if (R.C->P.Elems.size() > 1)
      NewCombined.push_back(Id);
    ++Adopted;
  }

  // Combination first (paper's order), then specialization rewrites.
  for (uint32_t Id : NewCombined)
    rewriteCombination(Id);
  rewriteSpecializations(NewIds);
  return Adopted;
}

void Compressor::compactDictionary() {
  // Greedy estimates over-promise: some adopted patterns end up unused
  // after rewriting (a competing pattern claimed their occurrences).
  // Unused entries still cost dictionary and successor-table bytes, so
  // drop them and remap ids. Base patterns are implicit in the file
  // format and stay put.
  const uint32_t NumBase = static_cast<uint32_t>(VMOp::NumOps);
  std::vector<uint32_t> Uses(Pats.size(), 0);
  for (const FuncState &FS : Funcs)
    for (const Slot &S : FS.Slots)
      ++Uses[S.PatId];

  std::vector<uint32_t> Remap(Pats.size(), ~0u);
  std::vector<Pattern> NewPats;
  NewPats.reserve(Pats.size());
  for (uint32_t I = 0; I != NumBase; ++I) {
    Remap[I] = I;
    NewPats.push_back(std::move(Pats[I]));
  }
  for (uint32_t I = NumBase; I != Pats.size(); ++I) {
    if (Uses[I] == 0)
      continue;
    Remap[I] = static_cast<uint32_t>(NewPats.size());
    NewPats.push_back(std::move(Pats[I]));
  }
  Pats = std::move(NewPats);
  for (FuncState &FS : Funcs)
    for (Slot &S : FS.Slots)
      S.PatId = Remap[S.PatId];
}

//===----------------------------------------------------------------------===//
// Emission: Markov opcode coding and operand packing
//===----------------------------------------------------------------------===//

void Compressor::emit(BriscProgram &Out) {
  Out.Pats = Pats;
  uint32_t BBCtx = static_cast<uint32_t>(Pats.size());
  Out.Successors.assign(Pats.size() + 1, {});

  // Pass 1: build successor lists (first-occurrence order) and per-slot
  // opcode byte sizes, then slot offsets.
  struct EmitFn {
    std::vector<uint32_t> SlotOff;
    std::vector<uint8_t> OpBytes;
  };
  std::vector<EmitFn> EmitFns(Funcs.size());

  auto SuccIndex = [&](uint32_t Ctx, uint32_t PatId) -> int {
    std::vector<uint32_t> &L = Out.Successors[Ctx];
    for (size_t I = 0; I != L.size(); ++I)
      if (L[I] == PatId)
        return static_cast<int>(I);
    L.push_back(PatId);
    return static_cast<int>(L.size() - 1);
  };

  for (size_t FI = 0; FI != Funcs.size(); ++FI) {
    FuncState &FS = Funcs[FI];
    EmitFn &EF = EmitFns[FI];
    uint32_t Ctx = BBCtx;
    uint32_t Off = 0;
    for (const Slot &S : FS.Slots) {
      EF.SlotOff.push_back(Off);
      int Idx = SuccIndex(Ctx, S.PatId);
      unsigned OpSize = Idx < 255 ? 1 : 3; // Escape: 255 + 2-byte id.
      EF.OpBytes.push_back(static_cast<uint8_t>(OpSize));
      Off += OpSize + Pats[S.PatId].operandBytes();
      Ctx = FS.BBStart[S.Begin + S.Count] ? BBCtx : S.PatId;
    }
    EF.SlotOff.push_back(Off);
  }

  // Pass 2: resolve branch targets to byte offsets and write the bytes.
  for (size_t FI = 0; FI != Funcs.size(); ++FI) {
    FuncState &FS = Funcs[FI];
    EmitFn &EF = EmitFns[FI];
    BriscFunction BF;
    BF.Name = FS.Name;

    // Concrete instruction index -> slot index.
    std::vector<uint32_t> SlotOfInstr(FS.Concrete.size() + 1, ~0u);
    for (size_t SI = 0; SI != FS.Slots.size(); ++SI)
      SlotOfInstr[FS.Slots[SI].Begin] = static_cast<uint32_t>(SI);

    auto LabelToOff = [&](uint32_t Label) -> uint32_t {
      uint32_t InstrIdx = FS.LabelPos[Label];
      uint32_t SlotIdx = SlotOfInstr[InstrIdx];
      if (SlotIdx == ~0u)
        reportFatal("brisc: branch target inside a combined pattern");
      return EF.SlotOff[SlotIdx];
    };

    ByteWriter W;
    uint32_t Ctx = BBCtx;
    std::vector<Instr> Rewritten;
    for (size_t SI = 0; SI != FS.Slots.size(); ++SI) {
      const Slot &S = FS.Slots[SI];
      const Pattern &P = Pats[S.PatId];
      // Opcode byte(s).
      int Idx = -1;
      const std::vector<uint32_t> &L = Out.Successors[Ctx];
      for (size_t I = 0; I != L.size(); ++I)
        if (L[I] == S.PatId) {
          Idx = static_cast<int>(I);
          break;
        }
      if (Idx < 0)
        reportFatal("brisc: successor list mismatch at emit");
      if (Idx < 255) {
        W.writeU8(static_cast<uint8_t>(Idx));
      } else {
        W.writeU8(255);
        W.writeU16(static_cast<uint16_t>(S.PatId));
      }
      // Operands, with labels rewritten to byte offsets.
      Rewritten.assign(FS.Concrete.begin() + S.Begin,
                       FS.Concrete.begin() + S.Begin + S.Count);
      for (Instr &In : Rewritten) {
        if (!vm::isBranch(In.Op))
          continue;
        uint32_t TOff = LabelToOff(In.Target);
        if (TOff > 32767)
          reportFatal("brisc: function too large for 16-bit targets");
        In.Target = TOff;
      }
      packOperands(P, Rewritten.data(), W);
      if (W.size() != EF.SlotOff[SI] + EF.OpBytes[SI] + P.operandBytes())
        reportFatal("brisc: emit size accounting mismatch");
      Ctx = FS.BBStart[S.Begin + S.Count] ? BBCtx : S.PatId;
    }
    BF.Code = W.take();

    for (size_t SI = 0; SI != FS.Slots.size(); ++SI)
      if (FS.BBStart[FS.Slots[SI].Begin])
        BF.BBOffsets.push_back(EF.SlotOff[SI]);
    Out.Funcs.push_back(std::move(BF));
  }

  Out.Entry = Prog.Entry;
  Out.Globals = Prog.Globals;
  Out.GlobalBase = Prog.GlobalBase;
  Out.GlobalEnd = Prog.GlobalEnd;
}

//===----------------------------------------------------------------------===//
// Driver
//===----------------------------------------------------------------------===//

BriscProgram Compressor::run() {
  initState();
  uint64_t TotalInstrs = 0;
  for (const FuncState &FS : Funcs)
    TotalInstrs += FS.Concrete.size();
  EffectiveK = Opts.K;
  if (Opts.AutoK)
    EffectiveK = std::max<unsigned>(
        Opts.K, static_cast<unsigned>(TotalInstrs / 1500));
  unsigned Pass = 0;
  for (; Pass != Opts.MaxPasses; ++Pass) {
    unsigned Adopted = runPass();
    if (Adopted < EffectiveK)
      break;
  }
  compactDictionary();
  BriscProgram Out;
  emit(Out);
  if (Stats) {
    Stats->Passes = Pass + 1;
    Stats->DictPatterns = Pats.size();
    std::vector<uint8_t> Image = Out.serialize(/*IncludeData=*/false);
    Stats->TotalBytes = Image.size();
    // Section sizes.
    ByteWriter DW;
    for (const Pattern &P : Pats)
      P.serialize(DW);
    Stats->DictBytes = DW.size();
    size_t Markov = 0;
    for (const auto &L : Out.Successors)
      Markov += 1 + 2 * L.size(); // Approximate varint accounting.
    Stats->MarkovBytes = Markov;
    size_t Code = 0, BBMap = 0;
    for (const BriscFunction &F : Out.Funcs) {
      Code += F.Code.size();
      BBMap += F.BBOffsets.size(); // Delta varints, mostly 1 byte.
    }
    Stats->CodeBytes = Code;
    Stats->BBMapBytes = BBMap;
  }
  return Out;
}

} // namespace

BriscProgram brisc::compress(const vm::VMProgram &P,
                             const CompressOptions &Opts,
                             CompressStats *Stats) {
  Compressor C(P, Opts, Stats);
  return C.run();
}

//===- brisc/Pattern.cpp - BRISC instruction patterns --------------------===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//

#include "brisc/Pattern.h"

#include "support/Error.h"
#include "support/Support.h"
#include "vm/Asm.h"

#include <sstream>

using namespace ccomp;
using namespace ccomp::brisc;
using vm::FieldKind;
using vm::Instr;
using vm::VMOp;

bool brisc::fitsWidth(Width W, int64_t V) {
  switch (W) {
  case Width::Nib: return V >= 0 && V <= 15;
  case Width::NibX4: return V % 4 == 0 && V >= 0 && V <= 60;
  case Width::B1: return V >= -128 && V <= 127;
  case Width::B1X4: return V % 4 == 0 && V >= -512 && V <= 508;
  case Width::B2: return V >= -32768 && V <= 32767;
  case Width::B4: return V >= INT32_MIN && V <= INT32_MAX;
  }
  ccomp_unreachable("bad width");
}

unsigned brisc::widthNibbles(Width W) {
  switch (W) {
  case Width::Nib:
  case Width::NibX4:
    return 1;
  case Width::B1:
  case Width::B1X4:
    return 2;
  case Width::B2:
    return 4;
  case Width::B4:
    return 8;
  }
  ccomp_unreachable("bad width");
}

/// True for opcodes that may transfer control out of a pattern.
static bool isControlOp(VMOp Op) {
  if (vm::isBranch(Op))
    return true;
  switch (Op) {
  case VMOp::CALL:
  case VMOp::RJR:
  case VMOp::EPI:
    return true;
  default:
    return false;
  }
}

bool Pattern::allDataOps() const {
  for (const SpecInstr &E : Elems)
    if (isControlOp(E.Op))
      return false;
  return true;
}

bool Pattern::wellFormed() const {
  if (Elems.empty())
    return false;
  for (size_t I = 0; I + 1 < Elems.size(); ++I)
    if (isControlOp(Elems[I].Op))
      return false;
  for (const SpecInstr &E : Elems) {
    unsigned N = vm::numFields(E.Op);
    const FieldKind *FK = vm::fieldKinds(E.Op);
    for (unsigned F = 0; F != N; ++F) {
      if (FK[F] == FieldKind::Label && E.specialized(F))
        return false; // Branch targets are never burned in.
      if (FK[F] == FieldKind::Reg && !E.specialized(F) &&
          E.Widths[F] != Width::Nib)
        return false;
      if ((FK[F] == FieldKind::Label || FK[F] == FieldKind::Func) &&
          !E.specialized(F) && E.Widths[F] != Width::B2)
        return false;
    }
  }
  return true;
}

bool Pattern::matches(const Instr *Seq, size_t N) const {
  if (N < Elems.size())
    return false;
  for (size_t I = 0; I != Elems.size(); ++I) {
    const SpecInstr &E = Elems[I];
    const Instr &In = Seq[I];
    if (In.Op != E.Op)
      return false;
    unsigned NF = vm::numFields(E.Op);
    for (unsigned F = 0; F != NF; ++F) {
      int64_t V = vm::getField(In, F);
      if (E.specialized(F)) {
        if (V != E.SpecVals[F])
          return false;
      } else if (!fitsWidth(E.Widths[F], V)) {
        return false;
      }
    }
  }
  return true;
}

unsigned Pattern::operandBytes() const {
  // Nibble-width fields are packed together first (two per byte), then
  // byte-width fields follow; this is how the paper fits "sp and 24 into
  // a single operand byte".
  unsigned Nibbles = 0, Bytes = 0;
  for (const SpecInstr &E : Elems) {
    unsigned NF = vm::numFields(E.Op);
    for (unsigned F = 0; F != NF; ++F) {
      if (E.specialized(F))
        continue;
      unsigned N = widthNibbles(E.Widths[F]);
      if (N == 1)
        ++Nibbles;
      else
        Bytes += N / 2;
    }
  }
  return (Nibbles + 1) / 2 + Bytes;
}

unsigned Pattern::dictEntryBytes() const {
  ByteWriter W;
  serialize(W);
  return static_cast<unsigned>(W.size());
}

std::string Pattern::key() const {
  ByteWriter W;
  serialize(W);
  const std::vector<uint8_t> &B = W.bytes();
  return std::string(B.begin(), B.end());
}

void Pattern::serialize(ByteWriter &W) const {
  W.writeVarU(Elems.size());
  for (const SpecInstr &E : Elems) {
    W.writeU8(static_cast<uint8_t>(E.Op));
    W.writeU8(E.SpecMask);
    unsigned NF = vm::numFields(E.Op);
    // Width codes pack two per byte (3 bits each suffices; use 4).
    uint8_t WPacked = 0;
    unsigned WCount = 0;
    for (unsigned F = 0; F != NF; ++F) {
      if (E.specialized(F))
        continue;
      WPacked |= static_cast<uint8_t>(E.Widths[F]) << (4 * (WCount & 1));
      if (WCount & 1) {
        W.writeU8(WPacked);
        WPacked = 0;
      }
      ++WCount;
    }
    if (WCount & 1)
      W.writeU8(WPacked);
    for (unsigned F = 0; F != NF; ++F)
      if (E.specialized(F))
        W.writeVarS(E.SpecVals[F]);
  }
}

Pattern Pattern::deserialize(ByteReader &R) {
  Pattern P;
  size_t N = R.readVarU();
  for (size_t I = 0; I != N; ++I) {
    SpecInstr E;
    E.Op = static_cast<VMOp>(R.readU8());
    if (E.Op >= VMOp::NumOps)
      decodeFail("brisc: bad opcode in dictionary");
    E.SpecMask = R.readU8();
    unsigned NF = vm::numFields(E.Op);
    unsigned WCount = 0;
    uint8_t WPacked = 0;
    for (unsigned F = 0; F != NF; ++F) {
      if (E.specialized(F))
        continue;
      if ((WCount & 1) == 0)
        WPacked = R.readU8();
      E.Widths[F] = static_cast<Width>((WPacked >> (4 * (WCount & 1))) & 15);
      if (E.Widths[F] > Width::B4)
        decodeFail("brisc: bad width in dictionary");
      ++WCount;
    }
    for (unsigned F = 0; F != NF; ++F)
      if (E.specialized(F))
        E.SpecVals[F] = static_cast<int32_t>(R.readVarS());
    P.Elems.push_back(E);
  }
  return P;
}

Pattern Pattern::base(VMOp Op) {
  Pattern P;
  SpecInstr E;
  E.Op = Op;
  unsigned NF = vm::numFields(Op);
  const FieldKind *FK = vm::fieldKinds(Op);
  for (unsigned F = 0; F != NF; ++F) {
    switch (FK[F]) {
    case FieldKind::Reg:
      E.Widths[F] = Width::Nib;
      break;
    case FieldKind::Imm:
      E.Widths[F] = Width::B4;
      break;
    case FieldKind::Label:
    case FieldKind::Func:
      E.Widths[F] = Width::B2;
      break;
    case FieldKind::None:
      break;
    }
  }
  P.Elems.push_back(E);
  return P;
}

std::string Pattern::str() const {
  std::ostringstream OS;
  if (Elems.size() > 1)
    OS << '<';
  for (size_t I = 0; I != Elems.size(); ++I) {
    const SpecInstr &E = Elems[I];
    if (I)
      OS << ',';
    OS << '[' << vm::opMnemonic(E.Op);
    unsigned NF = vm::numFields(E.Op);
    const FieldKind *FK = vm::fieldKinds(E.Op);
    for (unsigned F = 0; F != NF; ++F) {
      OS << (F ? "," : " ");
      if (!E.specialized(F)) {
        OS << '*';
        if (E.Widths[F] == Width::NibX4 || E.Widths[F] == Width::B1X4)
          OS << "x4";
        continue;
      }
      if (FK[F] == FieldKind::Reg)
        OS << vm::regName(static_cast<unsigned>(E.SpecVals[F]));
      else
        OS << E.SpecVals[F];
    }
    OS << ']';
  }
  if (Elems.size() > 1)
    OS << '>';
  return OS.str();
}

//===----------------------------------------------------------------------===//
// Operand packing
//===----------------------------------------------------------------------===//

namespace {

/// Streaming nibble/byte packer mirroring operandBytes().
class NibblePacker {
public:
  explicit NibblePacker(ByteWriter &W) : W(W) {}

  void putNibble(uint8_t V) {
    if (HavePending) {
      W.writeU8(static_cast<uint8_t>(Pending | (V << 4)));
      HavePending = false;
    } else {
      Pending = V & 15;
      HavePending = true;
    }
  }

  void flush() {
    if (HavePending) {
      W.writeU8(Pending);
      HavePending = false;
    }
  }

  void putBytes(int64_t V, unsigned N) {
    flush();
    for (unsigned I = 0; I != N; ++I)
      W.writeU8(static_cast<uint8_t>(V >> (8 * I)));
  }

private:
  ByteWriter &W;
  uint8_t Pending = 0;
  bool HavePending = false;
};

class NibbleUnpacker {
public:
  NibbleUnpacker(const uint8_t *Bytes, size_t N) : Bytes(Bytes), N(N) {}

  uint8_t getNibble() {
    if (HavePending) {
      HavePending = false;
      return Pending;
    }
    uint8_t B = next();
    Pending = B >> 4;
    HavePending = true;
    return B & 15;
  }

  void align() { HavePending = false; }

  int64_t getBytes(unsigned Count, bool SignExtend) {
    align();
    uint64_t V = 0;
    for (unsigned I = 0; I != Count; ++I)
      V |= static_cast<uint64_t>(next()) << (8 * I);
    if (SignExtend && Count < 8) {
      uint64_t SignBit = 1ull << (8 * Count - 1);
      if (V & SignBit)
        V |= ~((SignBit << 1) - 1);
    }
    return static_cast<int64_t>(V);
  }

  size_t consumed() const { return Pos; }

private:
  uint8_t next() {
    if (Pos >= N)
      decodeFail("brisc: truncated operand bytes");
    return Bytes[Pos++];
  }

  const uint8_t *Bytes;
  size_t N;
  size_t Pos = 0;
  uint8_t Pending = 0;
  bool HavePending = false;
};

} // namespace

void brisc::packOperands(const Pattern &P, const Instr *Seq,
                         ByteWriter &W) {
  // Phase 1: nibble-width fields, packed two per byte.
  NibblePacker Pk(W);
  for (size_t I = 0; I != P.Elems.size(); ++I) {
    const SpecInstr &E = P.Elems[I];
    unsigned NF = vm::numFields(E.Op);
    for (unsigned F = 0; F != NF; ++F) {
      if (E.specialized(F) || widthNibbles(E.Widths[F]) != 1)
        continue;
      int64_t V = vm::getField(Seq[I], F);
      Pk.putNibble(static_cast<uint8_t>(
          E.Widths[F] == Width::NibX4 ? V / 4 : V));
    }
  }
  Pk.flush();
  // Phase 2: byte-width fields.
  for (size_t I = 0; I != P.Elems.size(); ++I) {
    const SpecInstr &E = P.Elems[I];
    unsigned NF = vm::numFields(E.Op);
    for (unsigned F = 0; F != NF; ++F) {
      if (E.specialized(F) || widthNibbles(E.Widths[F]) == 1)
        continue;
      int64_t V = vm::getField(Seq[I], F);
      switch (E.Widths[F]) {
      case Width::B1:
        Pk.putBytes(V, 1);
        break;
      case Width::B1X4:
        Pk.putBytes(V / 4, 1);
        break;
      case Width::B2:
        Pk.putBytes(V, 2);
        break;
      case Width::B4:
        Pk.putBytes(V, 4);
        break;
      default:
        ccomp_unreachable("bad byte width");
      }
    }
  }
}

size_t brisc::unpackOperands(const Pattern &P, const uint8_t *Bytes,
                             size_t N, std::vector<Instr> &Out) {
  NibbleUnpacker Up(Bytes, N);
  size_t Start = Out.size();
  for (const SpecInstr &E : P.Elems) {
    Instr In;
    In.Op = E.Op;
    Out.push_back(In);
  }
  // Phase 1: nibble fields (packed first), plus specialized values.
  for (size_t I = 0; I != P.Elems.size(); ++I) {
    const SpecInstr &E = P.Elems[I];
    Instr &In = Out[Start + I];
    unsigned NF = vm::numFields(E.Op);
    for (unsigned F = 0; F != NF; ++F) {
      if (E.specialized(F)) {
        vm::setField(In, F, E.SpecVals[F]);
        continue;
      }
      if (widthNibbles(E.Widths[F]) != 1)
        continue;
      int64_t V = Up.getNibble();
      if (E.Widths[F] == Width::NibX4)
        V *= 4;
      vm::setField(In, F, V);
    }
  }
  Up.align();
  // Phase 2: byte fields.
  for (size_t I = 0; I != P.Elems.size(); ++I) {
    const SpecInstr &E = P.Elems[I];
    Instr &In = Out[Start + I];
    unsigned NF = vm::numFields(E.Op);
    for (unsigned F = 0; F != NF; ++F) {
      if (E.specialized(F) || widthNibbles(E.Widths[F]) == 1)
        continue;
      int64_t V;
      switch (E.Widths[F]) {
      case Width::B1:
        V = Up.getBytes(1, true);
        break;
      case Width::B1X4:
        V = Up.getBytes(1, true) * 4;
        break;
      case Width::B2:
        V = Up.getBytes(2, true);
        break;
      case Width::B4:
        V = Up.getBytes(4, true);
        break;
      default:
        ccomp_unreachable("bad width");
      }
      vm::setField(In, F, V);
    }
  }
  return Up.consumed();
}

//===- brisc/File.cpp - BRISC serialization and the loader --------------------===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//

#include "brisc/Brisc.h"

#include "support/ByteIO.h"
#include "support/Error.h"
#include "support/Support.h"

#include <algorithm>

using namespace ccomp;
using namespace ccomp::brisc;
using vm::Instr;
using vm::VMOp;

namespace {
constexpr uint32_t Magic = 0x52424343; // "CCBR".
constexpr unsigned NumBase = static_cast<unsigned>(VMOp::NumOps);
} // namespace

std::vector<uint8_t> BriscProgram::serialize(bool IncludeData) const {
  ByteWriter W;
  W.writeU32(Magic);
  W.writeU8(IncludeData ? 1 : 0);

  // Dictionary: base patterns are implicit.
  if (Pats.size() < NumBase)
    reportFatal("brisc: dictionary missing base patterns");
  W.writeVarU(Pats.size() - NumBase);
  for (size_t I = NumBase; I != Pats.size(); ++I)
    Pats[I].serialize(W);

  // Markov successor tables (one per pattern + the block-start context).
  if (Successors.size() != Pats.size() + 1)
    reportFatal("brisc: successor table count mismatch");
  for (const std::vector<uint32_t> &L : Successors) {
    W.writeVarU(L.size());
    int64_t Prev = 0;
    for (uint32_t Id : L) {
      W.writeVarS(static_cast<int64_t>(Id) - Prev);
      Prev = Id;
    }
  }

  // Functions.
  W.writeVarU(Funcs.size());
  for (const BriscFunction &F : Funcs) {
    W.writeVarU(F.Code.size());
    W.writeBytes(F.Code);
    W.writeVarU(F.BBOffsets.size());
    uint32_t Prev = 0;
    for (uint32_t Off : F.BBOffsets) {
      W.writeVarU(Off - Prev);
      Prev = Off;
    }
  }
  W.writeVarU(Entry);

  if (IncludeData) {
    for (const BriscFunction &F : Funcs)
      W.writeStr(F.Name);
    W.writeVarU(Globals.size());
    for (const vm::VMGlobal &G : Globals) {
      W.writeStr(G.Name);
      W.writeVarU(G.Addr);
      W.writeVarU(G.Size);
      W.writeVarU(G.Init.size());
      W.writeBytes(G.Init);
    }
    W.writeVarU(GlobalBase);
    W.writeVarU(GlobalEnd);
  }
  return W.take();
}

namespace {

BriscProgram parseOrThrow(ByteSpan Bytes) {
  BriscProgram B;
  ByteReader R(Bytes);
  if (R.readU32() != Magic)
    decodeFail("brisc: bad magic");
  bool HasData = R.readU8() != 0;

  for (unsigned I = 0; I != NumBase; ++I)
    B.Pats.push_back(Pattern::base(static_cast<VMOp>(I)));
  size_t NumAdded = R.readVarU();
  for (size_t I = 0; I != NumAdded; ++I) {
    Pattern P = Pattern::deserialize(R);
    if (!P.wellFormed())
      decodeFail("brisc: malformed pattern in dictionary");
    B.Pats.push_back(std::move(P));
  }

  B.Successors.resize(B.Pats.size() + 1);
  for (std::vector<uint32_t> &L : B.Successors) {
    size_t N = R.readVarU();
    int64_t Prev = 0;
    for (size_t I = 0; I != N; ++I) {
      Prev += R.readVarS();
      if (Prev < 0 || static_cast<size_t>(Prev) >= B.Pats.size())
        decodeFail("brisc: bad successor id");
      L.push_back(static_cast<uint32_t>(Prev));
    }
  }

  size_t NumFuncs = R.readVarU();
  for (size_t I = 0; I != NumFuncs; ++I) {
    BriscFunction F;
    F.Name = "f" + std::to_string(I);
    size_t Len = R.readVarU();
    F.Code = R.readBytes(Len);
    size_t NBB = R.readVarU();
    if (NBB > F.Code.size() + 1)
      decodeFail("brisc: more block starts than code bytes");
    uint32_t Prev = 0;
    for (size_t K = 0; K != NBB; ++K) {
      Prev += static_cast<uint32_t>(R.readVarU());
      F.BBOffsets.push_back(Prev);
    }
    B.Funcs.push_back(std::move(F));
  }
  B.Entry = static_cast<uint32_t>(R.readVarU());

  if (HasData) {
    for (BriscFunction &F : B.Funcs)
      F.Name = R.readStr();
    size_t NG = R.readVarU();
    for (size_t I = 0; I != NG; ++I) {
      vm::VMGlobal G;
      G.Name = R.readStr();
      G.Addr = static_cast<uint32_t>(R.readVarU());
      G.Size = static_cast<uint32_t>(R.readVarU());
      size_t InitLen = R.readVarU();
      G.Init = R.readBytes(InitLen);
      B.Globals.push_back(std::move(G));
    }
    B.GlobalBase = static_cast<uint32_t>(R.readVarU());
    B.GlobalEnd = static_cast<uint32_t>(R.readVarU());
  }
  return B;
}

} // namespace

Result<BriscProgram> BriscProgram::parse(ByteSpan Bytes) {
  return tryDecode([&] { return parseOrThrow(Bytes); });
}

BriscProgram BriscProgram::deserialize(ByteSpan Bytes) {
  Result<BriscProgram> R = parse(Bytes);
  if (!R.ok())
    reportFatal(R.error().message());
  return R.take();
}

//===----------------------------------------------------------------------===//
// Loader (BRISC -> decoded VM program)
//===----------------------------------------------------------------------===//

namespace {

vm::VMProgram decodeToVMOrThrow(const BriscProgram &B) {
  vm::VMProgram P;
  uint32_t BBCtx = B.bbStartContext();

  for (const BriscFunction &BF : B.Funcs) {
    vm::VMFunction F;
    F.Name = BF.Name;

    std::vector<uint32_t> InstrAtOff(BF.Code.size() + 1, ~0u);
    uint32_t Ctx = BBCtx;
    size_t Off = 0;
    size_t NextBB = 0;
    while (Off < BF.Code.size()) {
      if (NextBB < BF.BBOffsets.size() && BF.BBOffsets[NextBB] == Off) {
        Ctx = BBCtx;
        ++NextBB;
      }
      InstrAtOff[Off] = static_cast<uint32_t>(F.Code.size());
      uint8_t OpByte = BF.Code[Off];
      size_t OpLen = 1;
      uint32_t PatId;
      if (OpByte == 255) {
        if (Off + 3 > BF.Code.size())
          decodeFail("brisc: truncated escape opcode");
        PatId = static_cast<uint32_t>(BF.Code[Off + 1] |
                                      (BF.Code[Off + 2] << 8));
        OpLen = 3;
      } else {
        if (Ctx >= B.Successors.size() ||
            OpByte >= B.Successors[Ctx].size())
          decodeFail("brisc: opcode byte out of context range");
        PatId = B.Successors[Ctx][OpByte];
      }
      if (PatId >= B.Pats.size())
        decodeFail("brisc: bad pattern id");
      const Pattern &Pat = B.Pats[PatId];
      size_t Used = unpackOperands(Pat, BF.Code.data() + Off + OpLen,
                                   BF.Code.size() - (Off + OpLen), F.Code);
      Off += OpLen + Used;
      Ctx = PatId;
    }

    // Branch targets currently hold byte offsets; map them to labels
    // (one label per block-start offset).
    F.LabelPos.clear();
    for (uint32_t BBOff : BF.BBOffsets) {
      if (BBOff >= InstrAtOff.size() || InstrAtOff[BBOff] == ~0u)
        decodeFail("brisc: block offset not at a slot boundary");
      F.LabelPos.push_back(InstrAtOff[BBOff]);
    }
    for (Instr &In : F.Code) {
      if (!vm::isBranch(In.Op))
        continue;
      uint32_t TOff = In.Target;
      auto It = std::lower_bound(BF.BBOffsets.begin(), BF.BBOffsets.end(),
                                 TOff);
      if (It == BF.BBOffsets.end() || *It != TOff)
        decodeFail("brisc: branch to a non-block offset");
      In.Target = static_cast<uint32_t>(It - BF.BBOffsets.begin());
    }
    if (!F.Code.empty() && F.Code[0].Op == VMOp::ENTER)
      F.FrameSize = static_cast<uint32_t>(F.Code[0].Imm);
    P.Functions.push_back(std::move(F));
  }

  P.Entry = B.Entry;
  P.Globals = B.Globals;
  P.GlobalBase = B.GlobalBase;
  P.GlobalEnd = B.GlobalEnd;
  return P;
}

} // namespace

Result<vm::VMProgram> brisc::tryDecodeToVM(const BriscProgram &B) {
  return tryDecode([&] { return decodeToVMOrThrow(B); });
}

vm::VMProgram brisc::decodeToVM(const BriscProgram &B) {
  Result<vm::VMProgram> R = tryDecodeToVM(B);
  if (!R.ok())
    reportFatal(R.error().message());
  return R.take();
}

BriscLayout brisc::layoutOf(const BriscProgram &B) {
  BriscLayout L;
  // Fixed part: everything before the first function's code bytes.
  std::vector<uint8_t> Full = B.serialize(/*IncludeData=*/false);
  size_t CodeAndMaps = 0;
  for (const BriscFunction &F : B.Funcs) {
    CodeAndMaps += F.Code.size();
    CodeAndMaps += 1 + F.BBOffsets.size(); // Approximate map bytes.
  }
  size_t Fixed = Full.size() > CodeAndMaps ? Full.size() - CodeAndMaps : 0;
  L.FixedBytes = static_cast<uint32_t>(Fixed);
  uint32_t Base = L.FixedBytes;
  for (const BriscFunction &F : B.Funcs) {
    L.FuncBase.push_back(Base);
    Base += static_cast<uint32_t>(F.Code.size());
  }
  L.TotalBytes = Base;
  return L;
}

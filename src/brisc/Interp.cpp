//===- brisc/Interp.cpp - In-place BRISC interpretation -----------------------===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//

#include "brisc/Interp.h"

#include "support/Support.h"

#include <algorithm>

using namespace ccomp;
using namespace ccomp::brisc;
using vm::Instr;
using vm::Machine;
using vm::VMOp;

namespace {

/// Derives the EPI metadata of a compressed function by decoding its
/// prologue in place.
vm::FuncMeta prologueMeta(const BriscProgram &B, const BriscFunction &F) {
  vm::FuncMeta Meta;
  uint32_t Ctx = B.bbStartContext();
  size_t Off = 0;
  std::vector<Instr> Buf;
  bool Prologue = true;
  while (Off < F.Code.size() && Prologue) {
    uint8_t OpByte = F.Code[Off];
    size_t OpLen = 1;
    uint32_t PatId;
    if (OpByte == 255) {
      PatId = static_cast<uint32_t>(F.Code[Off + 1] | (F.Code[Off + 2] << 8));
      OpLen = 3;
    } else {
      if (Ctx >= B.Successors.size() || OpByte >= B.Successors[Ctx].size())
        return Meta;
      PatId = B.Successors[Ctx][OpByte];
    }
    const Pattern &P = B.Pats[PatId];
    Buf.clear();
    size_t Used = unpackOperands(P, F.Code.data() + Off + OpLen,
                                 F.Code.size() - (Off + OpLen), Buf);
    for (const Instr &In : Buf) {
      if (In.Op == VMOp::ENTER && Meta.Saves.empty() &&
          Meta.FrameSize == 0) {
        Meta.FrameSize = static_cast<uint32_t>(In.Imm);
      } else if (In.Op == VMOp::SPILL) {
        Meta.Saves.push_back({In.Rd, In.Imm});
      } else {
        Prologue = false;
        break;
      }
    }
    Off += OpLen + Used;
    Ctx = PatId;
  }
  return Meta;
}

} // namespace

vm::RunResult brisc::interpret(const BriscProgram &B, vm::RunOptions Opts) {
  vm::RunResult Res;
  if (B.Funcs.empty()) {
    Res.Trap = "empty program";
    return Res;
  }

  // Shim program supplies the data segment to the Machine.
  vm::VMProgram Shim;
  Shim.Globals = B.Globals;
  Shim.GlobalBase = B.GlobalBase;
  Shim.GlobalEnd = B.GlobalEnd;
  Opts.Layout = nullptr;
  Machine M(Shim, Opts);

  // Page accounting over the serialized image: the dictionary and
  // Markov tables are always resident; code pages count as touched.
  BriscLayout Layout = layoutOf(B);
  std::vector<uint8_t> PageSeen((Layout.TotalBytes / Opts.PageSize) + 2, 0);
  std::vector<uint32_t> PageTrace;
  uint32_t LastPage = ~0u;
  for (uint32_t Pg = 0; Pg <= Layout.FixedBytes / Opts.PageSize; ++Pg)
    PageSeen[Pg] = 1;
  auto Touch = [&](uint32_t Fn, uint32_t Off, uint32_t Len) {
    uint32_t First = (Layout.FuncBase[Fn] + Off) / Opts.PageSize;
    uint32_t Last = (Layout.FuncBase[Fn] + Off + Len) / Opts.PageSize;
    for (uint32_t Pg = First; Pg <= Last && Pg < PageSeen.size(); ++Pg)
      PageSeen[Pg] = 1;
    if (First != LastPage) {
      LastPage = First;
      if (PageTrace.size() < Opts.MaxPageTrace)
        PageTrace.push_back(First);
    }
  };

  std::vector<vm::FuncMeta> Metas;
  Metas.reserve(B.Funcs.size());
  for (const BriscFunction &F : B.Funcs)
    Metas.push_back(prologueMeta(B, F));

  uint32_t BBCtx = B.bbStartContext();
  uint32_t Fn = B.Entry;
  uint32_t Off = 0;
  uint32_t Ctx = BBCtx;
  uint64_t Steps = 0;
  std::vector<Instr> Buf;

  auto IsBBStart = [&](uint32_t F, uint32_t O) {
    const std::vector<uint32_t> &BB = B.Funcs[F].BBOffsets;
    return std::binary_search(BB.begin(), BB.end(), O);
  };

  while (!M.halted()) {
    const BriscFunction &F = B.Funcs[Fn];
    if (Off >= F.Code.size()) {
      M.trap("fell off the end of compressed function " + F.Name);
      break;
    }
    // Decode one pattern instance in place.
    uint8_t OpByte = F.Code[Off];
    size_t OpLen = 1;
    uint32_t PatId;
    if (OpByte == 255) {
      if (Off + 3 > F.Code.size()) {
        M.trap("truncated escape opcode");
        break;
      }
      PatId = static_cast<uint32_t>(F.Code[Off + 1] |
                                    (F.Code[Off + 2] << 8));
      OpLen = 3;
    } else {
      if (OpByte >= B.Successors[Ctx].size()) {
        M.trap("opcode byte outside Markov context");
        break;
      }
      PatId = B.Successors[Ctx][OpByte];
    }
    const Pattern &P = B.Pats[PatId];
    Buf.clear();
    size_t Used = unpackOperands(P, F.Code.data() + Off + OpLen,
                                 F.Code.size() - (Off + OpLen), Buf);
    uint32_t NextOff = Off + static_cast<uint32_t>(OpLen + Used);
    Touch(Fn, Off, static_cast<uint32_t>(OpLen + Used));

    Steps += Buf.size();
    if (Steps > Opts.MaxSteps) {
      M.trap("step limit exceeded");
      break;
    }

    bool Transferred = false;
    for (const Instr &In : Buf) {
      if (M.halted())
        break;
      if (M.dataStep(In))
        continue;
      switch (In.Op) {
      case VMOp::JMP:
        Off = In.Target;
        Ctx = BBCtx;
        Transferred = true;
        break;
      case VMOp::CALL:
        M.setReg(vm::RA, Machine::encodeRet(Fn, NextOff));
        Fn = In.Target;
        Off = 0;
        Ctx = BBCtx;
        Transferred = true;
        break;
      case VMOp::RJR:
      case VMOp::EPI: {
        uint32_t Addr = In.Op == VMOp::EPI ? M.execEpi(Metas[Fn])
                                           : M.reg(In.Rd);
        if (Addr == Machine::HaltRA) {
          M.haltWithN0();
          Transferred = true;
          break;
        }
        if (!(Addr & 0x80000000u)) {
          M.trap("return through non-code address");
          break;
        }
        Fn = Machine::retFunc(Addr);
        Off = Machine::retIdx(Addr);
        Ctx = BBCtx;
        Transferred = true;
        break;
      }
      default:
        if (vm::isBranch(In.Op)) {
          if (M.branchTaken(In)) {
            Off = In.Target;
            Ctx = BBCtx;
            Transferred = true;
          }
          break;
        }
        M.trap("unhandled opcode in BRISC interpreter");
        break;
      }
      if (Transferred)
        break;
    }
    if (M.halted())
      break;
    if (!Transferred) {
      Off = NextOff;
      Ctx = IsBBStart(Fn, NextOff) ? BBCtx : PatId;
    }
  }

  Res.Ok = !M.trapped();
  Res.ExitCode = M.exitCode();
  Res.Steps = Steps;
  Res.Trap = M.trapMessage();
  Res.Output = M.output();
  uint64_t Pages = 0;
  for (uint8_t Pg : PageSeen)
    Pages += Pg;
  Res.PagesTouched = Pages;
  Res.PageTrace = std::move(PageTrace);
  return Res;
}

//===- brisc/Brisc.h - BRISC compressed executables -------------*- C++ -*-===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// BRISC (Byte-coded RISC), section 4 of the paper: a dense, randomly
/// addressable program representation built by operand specialization
/// and opcode combination over linked VM programs, encoded byte-aligned
/// through an order-1 semi-static Markov model of instruction patterns
/// with a dedicated basic-block-start context.
///
/// A BriscProgram can be
///   - interpreted in place without decompression (brisc/Interp.h),
///   - expanded back to a VM program by the loader (decodeToVM, the
///     front half of the paper's just-in-time native code generation),
///   - serialized to a byte image whose size is what the paper's tables
///     report (dictionary + Markov tables + code + block maps).
///
//===----------------------------------------------------------------------===//

#ifndef CCOMP_BRISC_BRISC_H
#define CCOMP_BRISC_BRISC_H

#include "brisc/Pattern.h"
#include "support/Error.h"
#include "support/Span.h"
#include "vm/Machine.h"
#include "vm/Program.h"

#include <cstdint>
#include <string>
#include <vector>

namespace ccomp {
namespace brisc {

/// One compressed function.
struct BriscFunction {
  std::string Name;                ///< Not counted in the code segment.
  std::vector<uint8_t> Code;       ///< Opcode bytes + packed operands.
  std::vector<uint32_t> BBOffsets; ///< Sorted byte offsets of block starts.
};

/// A compressed executable.
struct BriscProgram {
  /// Dictionary. Ids 0..vm::VMOp::NumOps-1 are the base instruction set;
  /// higher ids were added by the compressor.
  std::vector<Pattern> Pats;

  /// Order-1 Markov model: Successors[ctx] lists the pattern ids that can
  /// follow context ctx, in first-occurrence order; the opcode byte is an
  /// index into this list (255 escapes to an explicit 2-byte id). Context
  /// ids equal pattern ids; the extra last context is the basic-block
  /// start context.
  std::vector<std::vector<uint32_t>> Successors;

  std::vector<BriscFunction> Funcs;
  uint32_t Entry = 0;

  // Data segment, carried through for execution (not part of the code
  // segment the paper's size comparisons measure).
  std::vector<vm::VMGlobal> Globals;
  uint32_t GlobalBase = 0x100;
  uint32_t GlobalEnd = 0x100;

  uint32_t bbStartContext() const {
    return static_cast<uint32_t>(Pats.size());
  }

  /// Serializes the program. With \p IncludeData the globals ride along
  /// (a self-contained executable); without, the image is the code
  /// segment the paper's size tables measure.
  std::vector<uint8_t> serialize(bool IncludeData) const;

  /// Parses a serialized image of unknown provenance. Corrupt input
  /// (truncated, bit-flipped, inflated length fields) yields a typed
  /// DecodeError; no input crashes, hangs, or reads out of bounds.
  static Result<BriscProgram> parse(ByteSpan Bytes);

  /// Thin aborting wrapper over parse() for internal callers that only
  /// feed images this library produced itself: corrupt input is fatal.
  static BriscProgram deserialize(ByteSpan Bytes);

  /// Code-segment byte size (dictionary + tables + code + block maps).
  size_t codeSegmentBytes() const { return serialize(false).size(); }
};

/// Compression knobs (defaults follow the paper).
struct CompressOptions {
  unsigned K = 20;              ///< Patterns adopted per pass.
  /// Scale K up on large inputs (effective K = max(K, instrs/1500)) so
  /// gcc-class programs converge in a bounded number of passes. The
  /// paper treats K as a tunable; disable to reproduce K exactly.
  bool AutoK = true;
  bool AbundantMemory = false;  ///< B = P instead of B = P - W.
  bool EnableSpecialization = true;
  bool EnableCombination = true;
  bool EnableEpi = true;        ///< Recognize whole epilogues as "epi".
  unsigned MaxPasses = 200;
  unsigned MaxCombinedElems = 6;
};

/// Compression telemetry for the experiment harness.
struct CompressStats {
  unsigned Passes = 0;
  size_t CandidatesTested = 0; ///< Distinct candidate patterns examined.
  size_t DictPatterns = 0;     ///< Final dictionary size (incl. base).
  size_t DictBytes = 0;
  size_t MarkovBytes = 0;
  size_t CodeBytes = 0;
  size_t BBMapBytes = 0;
  size_t TotalBytes = 0;       ///< codeSegmentBytes().
};

/// Compresses a linked VM program into BRISC.
BriscProgram compress(const vm::VMProgram &P,
                      const CompressOptions &Opts = CompressOptions(),
                      CompressStats *Stats = nullptr);

/// The loader: expands BRISC back into a decoded VM program (the first
/// half of just-in-time native code generation). For a program produced
/// by compress() the result executes identically to the compressor's
/// input; for a parsed image of unknown provenance malformed code bytes
/// yield a typed DecodeError.
Result<vm::VMProgram> tryDecodeToVM(const BriscProgram &B);

/// Thin aborting wrapper over tryDecodeToVM() for internal callers
/// holding programs the compressor built in-process.
vm::VMProgram decodeToVM(const BriscProgram &B);

/// Code layout of the serialized image, for working-set measurements of
/// in-place interpretation. Instruction granularity is the slot byte.
struct BriscLayout {
  std::vector<uint32_t> FuncBase; ///< Byte base of each function's code.
  uint32_t FixedBytes = 0;        ///< Dictionary + tables (always resident).
  uint32_t TotalBytes = 0;
};
BriscLayout layoutOf(const BriscProgram &B);

} // namespace brisc
} // namespace ccomp

#endif // CCOMP_BRISC_BRISC_H

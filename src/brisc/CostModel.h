//===- brisc/CostModel.h - Decompressor working-set cost (W) ----*- C++ -*-===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The W term of the paper's benefit metric B = P - W: every dictionary
/// entry costs decompressor memory for its native code-generation table
/// entry. The paper averages the Pentium and PowerPC 601 sequence sizes;
/// we model two analogous targets (a variable-length CISC and a
/// fixed-width RISC) with per-opcode byte costs.
///
//===----------------------------------------------------------------------===//

#ifndef CCOMP_BRISC_COSTMODEL_H
#define CCOMP_BRISC_COSTMODEL_H

#include "brisc/Pattern.h"

namespace ccomp {
namespace brisc {

/// Code-generation targets whose table sizes feed W.
enum class Target : uint8_t {
  CISC, ///< Pentium-like: variable-length, compact ALU ops.
  RISC, ///< PowerPC-601-like: fixed 4-byte words, two-op immediates.
};

/// Native instruction bytes the decompressor's table holds for one
/// pattern on \p T (burned-in operands are part of the sequence).
unsigned nativeSeqBytes(const Pattern &P, Target T);

/// The averaged W (plus the fixed per-entry table header).
unsigned workingSetCost(const Pattern &P);

} // namespace brisc
} // namespace ccomp

#endif // CCOMP_BRISC_COSTMODEL_H

//===- support/Huffman.cpp - Canonical Huffman coding --------------------===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Huffman.h"
#include "support/Error.h"
#include "support/Support.h"

#include <algorithm>
#include <cassert>
#include <queue>

using namespace ccomp;

std::vector<uint8_t>
ccomp::buildHuffmanLengths(const std::vector<uint64_t> &Freqs,
                           unsigned MaxLen) {
  const size_t N = Freqs.size();
  std::vector<uint8_t> Lengths(N, 0);

  // Collect live symbols.
  std::vector<unsigned> Live;
  for (unsigned I = 0; I != N; ++I)
    if (Freqs[I] != 0)
      Live.push_back(I);
  if (Live.empty())
    return Lengths;
  if (Live.size() == 1) {
    Lengths[Live[0]] = 1;
    return Lengths;
  }

  // Standard heap-based Huffman over internal nodes. Node indices < N are
  // leaves; >= N are internal.
  struct HeapEntry {
    uint64_t Freq;
    uint32_t Node;
    bool operator>(const HeapEntry &O) const {
      if (Freq != O.Freq)
        return Freq > O.Freq;
      return Node > O.Node; // Deterministic tie-break.
    }
  };
  std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                      std::greater<HeapEntry>>
      Heap;
  std::vector<uint32_t> Parent(N + Live.size(), 0);
  for (unsigned S : Live)
    Heap.push({Freqs[S], S});
  uint32_t Next = N;
  while (Heap.size() > 1) {
    HeapEntry A = Heap.top();
    Heap.pop();
    HeapEntry B = Heap.top();
    Heap.pop();
    Parent[A.Node] = Next;
    Parent[B.Node] = Next;
    Heap.push({A.Freq + B.Freq, Next});
    ++Next;
  }
  uint32_t Root = Heap.top().Node;

  // Depth of each leaf = code length.
  std::vector<uint8_t> Depth(Next, 0);
  for (uint32_t I = Next; I-- > 0;) {
    if (I == Root)
      continue;
    if (I >= N || Freqs[I] != 0) {
      unsigned D = Depth[Parent[I]] + 1;
      Depth[I] = static_cast<uint8_t>(std::min<unsigned>(D, 255));
    }
  }
  for (unsigned S : Live)
    Lengths[S] = Depth[S];

  // Length-limit: clamp overlong codes to MaxLen, then restore the Kraft
  // equality by lengthening the cheapest short codes (zlib-style repair).
  bool Over = false;
  for (unsigned S : Live)
    if (Lengths[S] > MaxLen) {
      Lengths[S] = static_cast<uint8_t>(MaxLen);
      Over = true;
    }
  if (Over) {
    // Kraft sum in units of 2^-MaxLen.
    auto kraft = [&]() {
      uint64_t Sum = 0;
      for (unsigned S : Live)
        Sum += 1ull << (MaxLen - Lengths[S]);
      return Sum;
    };
    uint64_t Limit = 1ull << MaxLen;
    // While oversubscribed, lengthen a code that is currently shorter than
    // MaxLen, preferring the rarest symbol (costs the fewest output bits).
    while (kraft() > Limit) {
      unsigned Best = ~0u;
      for (unsigned S : Live)
        if (Lengths[S] < MaxLen &&
            (Best == ~0u || Freqs[S] < Freqs[Best]))
          Best = S;
      if (Best == ~0u)
        reportFatal("Huffman length limiting failed");
      ++Lengths[Best];
    }
    // If undersubscribed, shorten the most frequent MaxLen code; purely an
    // optimization, decodability does not require Kraft equality.
    for (;;) {
      uint64_t Sum = kraft();
      if (Sum >= Limit)
        break;
      unsigned Best = ~0u;
      for (unsigned S : Live) {
        if (Lengths[S] <= 1)
          continue;
        uint64_t Gain = 1ull << (MaxLen - Lengths[S]);
        if (Sum + Gain <= Limit && (Best == ~0u || Freqs[S] > Freqs[Best]))
          Best = S;
      }
      if (Best == ~0u)
        break;
      --Lengths[Best];
    }
  }
  return Lengths;
}

bool HuffmanCode::isValidLengthSet(const std::vector<uint8_t> &Lengths) {
  unsigned Max = 0;
  for (uint8_t L : Lengths)
    Max = std::max<unsigned>(Max, L);
  if (Max == 0 || Max > 31)
    return Max == 0; // Empty alphabet is trivially fine.
  uint64_t Sum = 0;
  for (uint8_t L : Lengths)
    if (L)
      Sum += 1ull << (Max - L);
  return Sum <= (1ull << Max);
}

HuffmanCode::HuffmanCode(std::vector<uint8_t> Lens)
    : Lengths(std::move(Lens)) {
  for (uint8_t L : Lengths)
    MaxLen = std::max<unsigned>(MaxLen, L);
  Codes.assign(Lengths.size(), 0);
  CountOfLen.assign(MaxLen + 1, 0);
  for (uint8_t L : Lengths)
    if (L)
      ++CountOfLen[L];

  // Canonical first-code per length.
  FirstCode.assign(MaxLen + 2, 0);
  FirstIndex.assign(MaxLen + 2, 0);
  uint32_t Code = 0, Index = 0;
  for (unsigned L = 1; L <= MaxLen; ++L) {
    Code = (Code + (L > 1 ? CountOfLen[L - 1] : 0)) << 1;
    FirstCode[L] = Code;
    FirstIndex[L] = Index;
    Index += CountOfLen[L];
    if (FirstCode[L] + CountOfLen[L] > (1u << L))
      reportFatal("HuffmanCode: oversubscribed code lengths");
  }

  // Assign codes in (length, symbol) order.
  SortedSyms.clear();
  std::vector<uint32_t> NextCode(MaxLen + 1);
  for (unsigned L = 1; L <= MaxLen; ++L)
    NextCode[L] = FirstCode[L];
  for (unsigned S = 0; S != Lengths.size(); ++S) {
    unsigned L = Lengths[S];
    if (!L)
      continue;
    Codes[S] = NextCode[L]++;
  }
  // SortedSyms[FirstIndex[L] + k] = k-th symbol of length L.
  SortedSyms.assign(Index, 0);
  std::vector<uint32_t> Fill(MaxLen + 1);
  for (unsigned L = 1; L <= MaxLen; ++L)
    Fill[L] = FirstIndex[L];
  for (unsigned S = 0; S != Lengths.size(); ++S) {
    unsigned L = Lengths[S];
    if (!L)
      continue;
    SortedSyms[Fill[L]++] = S;
  }
}

void HuffmanCode::encode(BitWriter &BW, unsigned Sym) const {
  // Encoding a symbol with no code is a caller bug; diagnose it in every
  // build type (an assert alone would silently emit zero bits in NDEBUG
  // builds, producing an undecodable stream).
  if (Sym >= Lengths.size() || !Lengths[Sym])
    reportFatal("HuffmanCode: encoding a symbol with no code");
  BW.writeCodeMSB(Codes[Sym], Lengths[Sym]);
}

unsigned HuffmanCode::decode(BitReader &BR) const {
  uint32_t Code = 0;
  for (unsigned L = 1; L <= MaxLen; ++L) {
    Code = (Code << 1) | BR.readBit();
    if (CountOfLen[L] && Code < FirstCode[L] + CountOfLen[L] &&
        Code >= FirstCode[L])
      return SortedSyms[FirstIndex[L] + (Code - FirstCode[L])];
  }
  decodeFail("HuffmanCode: invalid code in stream");
}

uint64_t HuffmanCode::costBits(const std::vector<uint64_t> &Freqs) const {
  uint64_t Bits = 0;
  for (unsigned S = 0; S != Freqs.size() && S != Lengths.size(); ++S)
    Bits += Freqs[S] * Lengths[S];
  return Bits;
}

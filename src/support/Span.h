//===- support/Span.h - Non-owning byte views and byte sinks ----*- C++ -*-===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The two halves of every buffer-handling seam in the project:
///
///   - ByteSpan: a non-owning view of input bytes. Every public compress
///     and decompress entry point (flate, wire, brisc, vm encodings)
///     takes one, so callers can hand in a whole file, a slice of a
///     larger container, or a memory-mapped region without copying.
///     std::vector<uint8_t> converts implicitly, which keeps every
///     pre-existing vector-based call site source-compatible.
///
///   - Sink: an append-only output target. Producers that would
///     otherwise return an owned vector can write into a caller-chosen
///     Sink instead (a growing vector, a framing writer, ...), so
///     multi-stage pipelines avoid intermediate copies.
///
//===----------------------------------------------------------------------===//

#ifndef CCOMP_SUPPORT_SPAN_H
#define CCOMP_SUPPORT_SPAN_H

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

namespace ccomp {

/// Non-owning view of a contiguous byte buffer. Never allocates; the
/// caller guarantees the underlying storage outlives the span.
class ByteSpan {
public:
  constexpr ByteSpan() = default;
  constexpr ByteSpan(const uint8_t *Data, size_t N) : Ptr(Data), N(N) {}
  /*implicit*/ ByteSpan(const std::vector<uint8_t> &V)
      : Ptr(V.data()), N(V.size()) {}

  constexpr const uint8_t *data() const { return Ptr; }
  constexpr size_t size() const { return N; }
  constexpr bool empty() const { return N == 0; }

  constexpr uint8_t operator[](size_t I) const { return Ptr[I]; }
  constexpr const uint8_t *begin() const { return Ptr; }
  constexpr const uint8_t *end() const { return Ptr + N; }

  /// Sub-view [Pos, Pos+Len); clamped to the span's end.
  constexpr ByteSpan subspan(size_t Pos, size_t Len = ~size_t(0)) const {
    if (Pos > N)
      Pos = N;
    size_t Avail = N - Pos;
    return ByteSpan(Ptr + Pos, Len < Avail ? Len : Avail);
  }
  constexpr ByteSpan first(size_t Len) const { return subspan(0, Len); }

  /// Materializes an owned copy (the boundary back into owning code).
  std::vector<uint8_t> toVector() const {
    return std::vector<uint8_t>(Ptr, Ptr + N);
  }

  friend bool operator==(ByteSpan A, ByteSpan B) {
    return A.N == B.N &&
           (A.N == 0 || std::memcmp(A.Ptr, B.Ptr, A.N) == 0);
  }
  friend bool operator!=(ByteSpan A, ByteSpan B) { return !(A == B); }

private:
  const uint8_t *Ptr = nullptr;
  size_t N = 0;
};

/// Append-only byte output target.
class Sink {
public:
  virtual ~Sink() = default;

  /// Appends \p N bytes.
  virtual void write(const uint8_t *Data, size_t N) = 0;

  void write(ByteSpan S) { write(S.data(), S.size()); }
  void writeByte(uint8_t B) { write(&B, 1); }
};

/// The common Sink: appends into an owned, growable vector.
class VectorSink final : public Sink {
public:
  using Sink::write;
  void write(const uint8_t *Data, size_t N) override {
    Bytes.insert(Bytes.end(), Data, Data + N);
  }

  size_t size() const { return Bytes.size(); }
  const std::vector<uint8_t> &bytes() const { return Bytes; }
  std::vector<uint8_t> take() { return std::move(Bytes); }

private:
  std::vector<uint8_t> Bytes;
};

} // namespace ccomp

#endif // CCOMP_SUPPORT_SPAN_H

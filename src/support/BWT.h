//===- support/BWT.h - Burrows-Wheeler transform ---------------*- C++ -*-===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Burrows-Wheeler transform over byte buffers, as the front stage
/// of the bwt-dict codec: bwtForward() sorts all rotations of the input
/// (prefix-doubling, O(n log^2 n)) and returns the last column plus the
/// row index of the original string; bwtInverse() rebuilds the input by
/// the standard first-column/last-column successor walk. The transform
/// is a permutation, so MTF + Huffman over the last column exploits the
/// run structure sorting creates without losing a byte.
///
//===----------------------------------------------------------------------===//

#ifndef CCOMP_SUPPORT_BWT_H
#define CCOMP_SUPPORT_BWT_H

#include "support/Error.h"
#include "support/Span.h"

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

namespace ccomp {

/// The forward transform's output: the last column of the sorted
/// rotation matrix and the row holding the original string.
struct BWTResult {
  std::vector<uint8_t> LastCol;
  uint32_t Primary = 0;
};

/// Sorts all rotations of \p In by prefix doubling and returns the last
/// column plus the primary row index. Empty input yields an empty
/// column with Primary 0.
inline BWTResult bwtForward(ByteSpan In) {
  const size_t N = In.size();
  BWTResult Out;
  if (N == 0)
    return Out;

  // Rank of each rotation by its first K characters; double K until
  // every rotation has a distinct rank (or K covers the length).
  std::vector<uint32_t> Rank(N), Tmp(N);
  std::vector<uint32_t> Idx(N);
  std::iota(Idx.begin(), Idx.end(), 0u);
  for (size_t I = 0; I != N; ++I)
    Rank[I] = In[I];
  for (size_t K = 1;; K <<= 1) {
    auto Key = [&](uint32_t I) {
      return std::pair<uint32_t, uint32_t>(Rank[I], Rank[(I + K) % N]);
    };
    // Tie-break equal ranks on the rotation index: periodic inputs
    // have truly identical rotations, and the canonical order keeps
    // the emitted frame deterministic byte for byte.
    std::sort(Idx.begin(), Idx.end(), [&](uint32_t A, uint32_t B) {
      return Key(A) < Key(B) || (Key(A) == Key(B) && A < B);
    });
    Tmp[Idx[0]] = 0;
    for (size_t I = 1; I != N; ++I)
      Tmp[Idx[I]] = Tmp[Idx[I - 1]] + (Key(Idx[I - 1]) < Key(Idx[I]) ? 1 : 0);
    Rank.swap(Tmp);
    if (Rank[Idx[N - 1]] == N - 1 || K >= N)
      break;
  }

  Out.LastCol.resize(N);
  for (size_t I = 0; I != N; ++I) {
    uint32_t Rot = Idx[I];
    Out.LastCol[I] = In[(Rot + N - 1) % N];
    if (Rot == 0)
      Out.Primary = static_cast<uint32_t>(I);
  }
  return Out;
}

/// Inverts the transform. \p Primary must name a row of the matrix;
/// anything out of range is a typed DecodeError (corrupt frame).
inline std::vector<uint8_t> bwtInverse(const std::vector<uint8_t> &LastCol,
                                       uint32_t Primary) {
  const size_t N = LastCol.size();
  if (N == 0) {
    if (Primary != 0)
      decodeFail("bwt: primary index in an empty transform");
    return {};
  }
  if (Primary >= N)
    decodeFail("bwt: primary index out of range");

  // T maps each row to the row whose rotation is one step earlier; the
  // walk from the primary row replays the original string.
  uint32_t Starts[256] = {};
  for (uint8_t C : LastCol)
    ++Starts[C];
  uint32_t Sum = 0;
  for (unsigned C = 0; C != 256; ++C) {
    uint32_t Cnt = Starts[C];
    Starts[C] = Sum;
    Sum += Cnt;
  }
  std::vector<uint32_t> T(N);
  for (size_t I = 0; I != N; ++I)
    T[Starts[LastCol[I]]++] = static_cast<uint32_t>(I);

  std::vector<uint8_t> Out(N);
  uint32_t P = T[Primary];
  for (size_t I = 0; I != N; ++I) {
    Out[I] = LastCol[P];
    P = T[P];
  }
  return Out;
}

} // namespace ccomp

#endif // CCOMP_SUPPORT_BWT_H

//===- support/Huffman.h - Canonical Huffman coding ------------*- C++ -*-===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Canonical Huffman coding with a configurable maximum code length.
/// The paper's wire format Huffman-codes MTF indices (step 4 of the
/// pipeline in section 3) and the flate compressor uses the same coder
/// for its literal/length and distance alphabets.
///
//===----------------------------------------------------------------------===//

#ifndef CCOMP_SUPPORT_HUFFMAN_H
#define CCOMP_SUPPORT_HUFFMAN_H

#include "support/BitStream.h"

#include <cstdint>
#include <vector>

namespace ccomp {

/// Computes length-limited canonical Huffman code lengths for \p Freqs.
///
/// Symbols with zero frequency get length 0 (no code). If only one symbol
/// has nonzero frequency it is assigned length 1 so the stream remains
/// decodable. Lengths never exceed \p MaxLen (overlong codes are adjusted
/// with the standard zlib-style rebalancing).
std::vector<uint8_t> buildHuffmanLengths(const std::vector<uint64_t> &Freqs,
                                         unsigned MaxLen = 15);

/// A canonical Huffman code built from code lengths, usable for both
/// encoding and decoding. Codes are assigned in the canonical order:
/// shorter codes first, ties broken by symbol index.
class HuffmanCode {
public:
  /// Builds the canonical code. Invalid (oversubscribed) length sets are a
  /// fatal error for lengths produced internally; use isValidLengthSet()
  /// first when the lengths come from an untrusted container.
  explicit HuffmanCode(std::vector<uint8_t> Lengths);

  /// Returns true if \p Lengths forms a decodable (not oversubscribed)
  /// canonical code.
  static bool isValidLengthSet(const std::vector<uint8_t> &Lengths);

  /// Writes the code for \p Sym to \p BW. \p Sym must have a code;
  /// encoding a codeless symbol is a fatal error in every build type.
  void encode(BitWriter &BW, unsigned Sym) const;

  /// Reads one symbol from \p BR. Throws DecodeError on a bit pattern
  /// that is not a valid code (corrupt stream).
  unsigned decode(BitReader &BR) const;

  unsigned numSymbols() const { return Lengths.size(); }
  uint8_t lengthOf(unsigned Sym) const { return Lengths[Sym]; }
  const std::vector<uint8_t> &lengths() const { return Lengths; }

  /// Total encoded bit count if symbol \p Sym occurs Freqs[Sym] times.
  uint64_t costBits(const std::vector<uint64_t> &Freqs) const;

private:
  std::vector<uint8_t> Lengths;   // Per-symbol code length, 0 = absent.
  std::vector<uint32_t> Codes;    // Per-symbol canonical code (MSB-first).
  // Canonical decode tables indexed by length 1..MaxLen.
  unsigned MaxLen = 0;
  std::vector<uint32_t> FirstCode;   // First canonical code of each length.
  std::vector<uint32_t> FirstIndex;  // Index of that code in SortedSyms.
  std::vector<uint32_t> CountOfLen;  // Number of codes of each length.
  std::vector<uint32_t> SortedSyms;  // Symbols sorted by (length, index).
};

} // namespace ccomp

#endif // CCOMP_SUPPORT_HUFFMAN_H

//===- support/Support.h - Common utilities -------------------*- C++ -*-===//
//
// Part of the ccomp project: a reproduction of "Code Compression",
// Ernst, Evans, Fraser, Lucco, Proebsting, PLDI 1997.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small project-wide helpers: fatal-error reporting and an unreachable
/// marker in the style of llvm_unreachable.
///
//===----------------------------------------------------------------------===//

#ifndef CCOMP_SUPPORT_SUPPORT_H
#define CCOMP_SUPPORT_SUPPORT_H

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace ccomp {

/// Prints \p Msg to stderr and aborts. Used for invariant violations that
/// indicate a bug in this library rather than bad user input.
[[noreturn]] inline void reportFatal(const std::string &Msg) {
  std::fprintf(stderr, "ccomp fatal error: %s\n", Msg.c_str());
  std::abort();
}

/// Marks a point in the code that must never be reached.
[[noreturn]] inline void unreachableImpl(const char *Msg, const char *File,
                                         unsigned Line) {
  std::fprintf(stderr, "UNREACHABLE executed at %s:%u: %s\n", File, Line, Msg);
  std::abort();
}

#define ccomp_unreachable(MSG)                                                 \
  ::ccomp::unreachableImpl(MSG, __FILE__, __LINE__)

} // namespace ccomp

#endif // CCOMP_SUPPORT_SUPPORT_H

//===- support/Support.h - Common utilities -------------------*- C++ -*-===//
//
// Part of the ccomp project: a reproduction of "Code Compression",
// Ernst, Evans, Fraser, Lucco, Proebsting, PLDI 1997.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small project-wide helpers: fatal-error reporting and an unreachable
/// marker in the style of llvm_unreachable.
///
//===----------------------------------------------------------------------===//

#ifndef CCOMP_SUPPORT_SUPPORT_H
#define CCOMP_SUPPORT_SUPPORT_H

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace ccomp {

/// Prints \p Msg to stderr and aborts. Used for invariant violations that
/// indicate a bug in this library rather than bad user input.
[[noreturn]] inline void reportFatal(const std::string &Msg) {
  std::fprintf(stderr, "ccomp fatal error: %s\n", Msg.c_str());
  std::abort();
}

/// Marks a point in the code that must never be reached.
[[noreturn]] inline void unreachableImpl(const char *Msg, const char *File,
                                         unsigned Line) {
  std::fprintf(stderr, "UNREACHABLE executed at %s:%u: %s\n", File, Line, Msg);
  std::abort();
}

#define ccomp_unreachable(MSG)                                                 \
  ::ccomp::unreachableImpl(MSG, __FILE__, __LINE__)

/// Strict decimal parse of a command-line number: every byte must be a
/// digit, the value must not overflow uint64_t, and it must land in
/// [Min, Max]. Returns false (leaving \p Out untouched) on any
/// violation — unlike atoi, which silently maps garbage and overflow to
/// 0/UB. Callers turn the false into a typed usage error.
inline bool parseUnsigned(const char *S, uint64_t Min, uint64_t Max,
                          uint64_t &Out) {
  if (!S || !*S)
    return false;
  uint64_t V = 0;
  for (const char *P = S; *P; ++P) {
    if (*P < '0' || *P > '9')
      return false;
    unsigned D = static_cast<unsigned>(*P - '0');
    if (V > (UINT64_MAX - D) / 10)
      return false;
    V = V * 10 + D;
  }
  if (V < Min || V > Max)
    return false;
  Out = V;
  return true;
}

} // namespace ccomp

#endif // CCOMP_SUPPORT_SUPPORT_H

//===- support/BitStream.h - LSB-first bit reader/writer -------*- C++ -*-===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// LSB-first bit-level I/O, shared by the Huffman coder and the flate
/// (DEFLATE-class) compressor. The bit order matches DEFLATE: bits are
/// packed into each byte starting at the least significant position.
///
//===----------------------------------------------------------------------===//

#ifndef CCOMP_SUPPORT_BITSTREAM_H
#define CCOMP_SUPPORT_BITSTREAM_H

#include "support/Error.h"
#include "support/Span.h"
#include "support/Support.h"

#include <cassert>
#include <cstdint>
#include <vector>

namespace ccomp {

/// Append-only LSB-first bit sink.
class BitWriter {
public:
  /// Writes the low \p NBits bits of \p V, least significant bit first.
  /// NBits > 32 is a caller bug; it is diagnosed in every build type
  /// (an assert alone would silently truncate in NDEBUG builds).
  void writeBits(uint32_t V, unsigned NBits) {
    if (NBits > 32)
      reportFatal("BitWriter: bit count out of range");
    Acc |= static_cast<uint64_t>(V & bitMask(NBits)) << NAcc;
    NAcc += NBits;
    while (NAcc >= 8) {
      Bytes.push_back(static_cast<uint8_t>(Acc));
      Acc >>= 8;
      NAcc -= 8;
    }
  }

  /// Writes a Huffman code, which by canonical-code convention is stored
  /// MSB-first in \p Code; this reverses it into the LSB-first stream.
  void writeCodeMSB(uint32_t Code, unsigned NBits) {
    uint32_t Rev = 0;
    for (unsigned I = 0; I != NBits; ++I)
      Rev |= ((Code >> I) & 1) << (NBits - 1 - I);
    writeBits(Rev, NBits);
  }

  /// Pads to a byte boundary with zero bits and returns the buffer.
  std::vector<uint8_t> finish() {
    if (NAcc > 0) {
      Bytes.push_back(static_cast<uint8_t>(Acc));
      Acc = 0;
      NAcc = 0;
    }
    return std::move(Bytes);
  }

  /// Number of bits written so far.
  size_t bitCount() const { return Bytes.size() * 8 + NAcc; }

private:
  static uint32_t bitMask(unsigned NBits) {
    return NBits >= 32 ? 0xFFFFFFFFu : ((1u << NBits) - 1u);
  }

  std::vector<uint8_t> Bytes;
  uint64_t Acc = 0;
  unsigned NAcc = 0;
};

/// Sequential LSB-first bit source. Reading past the end throws
/// DecodeError (truncated stream); decode entry points catch at the
/// frame boundary and return a typed error.
class BitReader {
public:
  /*implicit*/ BitReader(ByteSpan S) : Data(S.data()), NBytes(S.size()) {}
  BitReader(const uint8_t *Data, size_t N) : Data(Data), NBytes(N) {}
  explicit BitReader(const std::vector<uint8_t> &V)
      : Data(V.data()), NBytes(V.size()) {}

  uint32_t readBits(unsigned NBits) {
    if (NBits > 32)
      reportFatal("BitReader: bit count out of range"); // Caller bug.
    while (NAcc < NBits) {
      if (Pos >= NBytes)
        decodeFail("BitReader: read past end of stream");
      Acc |= static_cast<uint64_t>(Data[Pos++]) << NAcc;
      NAcc += 8;
    }
    uint32_t V = static_cast<uint32_t>(Acc) &
                 (NBits >= 32 ? 0xFFFFFFFFu : ((1u << NBits) - 1u));
    Acc >>= NBits;
    NAcc -= NBits;
    return V;
  }

  /// Reads a single bit.
  uint32_t readBit() { return readBits(1); }

  /// True once every byte has been consumed and fewer than 8 buffered bits
  /// remain (the tail padding).
  bool nearEnd() const { return Pos >= NBytes && NAcc < 8; }

  size_t bitPos() const { return Pos * 8 - NAcc; }

private:
  const uint8_t *Data;
  size_t NBytes;
  size_t Pos = 0;
  uint64_t Acc = 0;
  unsigned NAcc = 0;
};

} // namespace ccomp

#endif // CCOMP_SUPPORT_BITSTREAM_H

//===- support/FaultInject.h - Deterministic corruption harness -*- C++ -*-===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic fault-injection harness for the decode paths. Wire
/// files and BRISC images are delivery formats; this module manufactures
/// the malformed buffers a production decoder must survive — bit flips,
/// byte substitutions, truncations, inserted garbage, and inflated
/// varint length fields — from a seeded PRNG so every failure is
/// reproducible from its (seed, index) pair.
///
/// Usage:
///   FaultInjector FI(Seed);
///   for (int I = 0; I != 1000; ++I) {
///     Fault F = FI.plan(Valid.size());
///     std::vector<uint8_t> Bad = applyFault(Valid, F);
///     // decode Bad; assert typed error or clean success, never a crash
///   }
///
/// Extending the harness: add a FaultKind, teach applyFault() the
/// mutation, and add the kind to FaultInjector::plan()'s draw. Every
/// decoder test that round-trips through corruptionSweep() picks the new
/// kind up automatically.
///
//===----------------------------------------------------------------------===//

#ifndef CCOMP_SUPPORT_FAULTINJECT_H
#define CCOMP_SUPPORT_FAULTINJECT_H

#include "support/PRNG.h"

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace ccomp {

/// The corruption classes the harness knows how to inflict.
enum class FaultKind : uint8_t {
  BitFlip,       ///< Flip 1..8 random bits.
  ByteSet,       ///< Overwrite 1..4 random bytes with random values.
  Truncate,      ///< Drop a random-length tail.
  InsertGarbage, ///< Splice 1..8 random bytes at a random offset.
  InflateLength, ///< Overwrite a run with 0xFF: varints become maximal.
  ZeroRun,       ///< Overwrite a random run with zero bytes.
};

const char *faultKindName(FaultKind K);

/// One planned corruption, fully determined by its fields (so a failing
/// case can be replayed without the PRNG).
struct Fault {
  FaultKind Kind = FaultKind::BitFlip;
  size_t Offset = 0; ///< Primary position (bit index for BitFlip).
  size_t Count = 1;  ///< Bits flipped / bytes written / bytes kept.
  uint64_t Seed = 0; ///< Per-fault value stream for random bytes.

  /// Human-readable form for failure messages.
  std::string str() const;
};

/// Returns a corrupted copy of \p Buf with \p F applied. \p Buf is not
/// modified; an empty buffer passes through untouched.
std::vector<uint8_t> applyFault(const std::vector<uint8_t> &Buf,
                                const Fault &F);

/// Draws reproducible corruption plans from a seed.
class FaultInjector {
public:
  explicit FaultInjector(uint64_t Seed) : Rng(Seed) {}

  /// Plans one corruption of a buffer of \p Size bytes, cycling through
  /// every FaultKind so each class gets coverage.
  Fault plan(size_t Size);

private:
  PRNG Rng;
  unsigned NextKind = 0;
};

/// Runs \p Rounds corruptions of \p Valid through \p Decode, which must
/// return true if the corrupted buffer decoded cleanly and false if it
/// was rejected with a typed error (anything else — abort, hang, OOB —
/// is exactly what the harness exists to rule out). Returns the number
/// of corruptions that were rejected; on a decode that neither succeeds
/// nor rejects, the exception propagates with the Fault recorded in
/// \p LastFault for reproduction.
size_t corruptionSweep(const std::vector<uint8_t> &Valid, uint64_t Seed,
                       unsigned Rounds,
                       const std::function<bool(const std::vector<uint8_t> &)>
                           &Decode,
                       Fault *LastFault = nullptr);

} // namespace ccomp

#endif // CCOMP_SUPPORT_FAULTINJECT_H

//===- support/ByteIO.h - Byte buffer reader/writer ------------*- C++ -*-===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Little-endian byte-buffer serialization helpers used by every on-disk
/// and on-wire container format in the project (wire streams, BRISC
/// dictionaries, flate framing).
///
//===----------------------------------------------------------------------===//

#ifndef CCOMP_SUPPORT_BYTEIO_H
#define CCOMP_SUPPORT_BYTEIO_H

#include "support/Error.h"
#include "support/Span.h"
#include "support/Support.h"

#include <cassert>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace ccomp {

/// Append-only little-endian byte sink. Implements the generic Sink
/// interface so producers written against Sink can target a ByteWriter
/// (and its framing helpers) directly.
class ByteWriter : public Sink {
public:
  using Sink::write;
  void write(const uint8_t *Data, size_t N) override { writeBytes(Data, N); }

  void writeU8(uint8_t V) { Bytes.push_back(V); }

  void writeU16(uint16_t V) {
    writeU8(static_cast<uint8_t>(V));
    writeU8(static_cast<uint8_t>(V >> 8));
  }

  void writeU32(uint32_t V) {
    writeU16(static_cast<uint16_t>(V));
    writeU16(static_cast<uint16_t>(V >> 16));
  }

  void writeU64(uint64_t V) {
    writeU32(static_cast<uint32_t>(V));
    writeU32(static_cast<uint32_t>(V >> 32));
  }

  /// Unsigned LEB128.
  void writeVarU(uint64_t V) {
    while (V >= 0x80) {
      writeU8(static_cast<uint8_t>(V) | 0x80);
      V >>= 7;
    }
    writeU8(static_cast<uint8_t>(V));
  }

  /// Signed LEB128 via zig-zag.
  void writeVarS(int64_t V) {
    writeVarU((static_cast<uint64_t>(V) << 1) ^
              static_cast<uint64_t>(V >> 63));
  }

  /// Length-prefixed string.
  void writeStr(const std::string &S) {
    writeVarU(S.size());
    Bytes.insert(Bytes.end(), S.begin(), S.end());
  }

  void writeBytes(const uint8_t *Data, size_t N) {
    Bytes.insert(Bytes.end(), Data, Data + N);
  }

  void writeBytes(const std::vector<uint8_t> &Data) {
    writeBytes(Data.data(), Data.size());
  }

  size_t size() const { return Bytes.size(); }
  const std::vector<uint8_t> &bytes() const { return Bytes; }
  std::vector<uint8_t> take() { return std::move(Bytes); }

private:
  std::vector<uint8_t> Bytes;
};

/// Sequential little-endian byte source. Reads past the end throw
/// DecodeError (corrupt container), never UB: decode entry points catch
/// at the frame boundary and return a typed error.
class ByteReader {
public:
  /*implicit*/ ByteReader(ByteSpan S) : Data(S.data()), N(S.size()) {}
  ByteReader(const uint8_t *Data, size_t N) : Data(Data), N(N) {}
  explicit ByteReader(const std::vector<uint8_t> &V)
      : Data(V.data()), N(V.size()) {}

  /// The unread remainder as a view.
  ByteSpan rest() const { return ByteSpan(Data + Pos, N - Pos); }

  uint8_t readU8() {
    if (Pos >= N)
      decodeFail("ByteReader: read past end of buffer");
    return Data[Pos++];
  }

  uint16_t readU16() {
    uint16_t Lo = readU8();
    return static_cast<uint16_t>(Lo | (readU8() << 8));
  }

  uint32_t readU32() {
    uint32_t Lo = readU16();
    return Lo | (static_cast<uint32_t>(readU16()) << 16);
  }

  uint64_t readU64() {
    uint64_t Lo = readU32();
    return Lo | (static_cast<uint64_t>(readU32()) << 32);
  }

  uint64_t readVarU() {
    uint64_t V = 0;
    unsigned Shift = 0;
    for (;;) {
      uint8_t B = readU8();
      V |= static_cast<uint64_t>(B & 0x7F) << Shift;
      if (!(B & 0x80))
        return V;
      Shift += 7;
      if (Shift >= 64)
        decodeFail("ByteReader: malformed varint");
    }
  }

  int64_t readVarS() {
    uint64_t Z = readVarU();
    return static_cast<int64_t>((Z >> 1) ^ (~(Z & 1) + 1));
  }

  std::string readStr() {
    // Compare against remaining() rather than `Pos + Len > N`: a corrupt
    // 64-bit length can make Pos + Len wrap around and pass that check.
    size_t Len = readVarU();
    if (Len > N - Pos)
      decodeFail("ByteReader: string past end of buffer");
    std::string S(reinterpret_cast<const char *>(Data + Pos), Len);
    Pos += Len;
    return S;
  }

  std::vector<uint8_t> readBytes(size_t Len) {
    if (Len > N - Pos)
      decodeFail("ByteReader: bytes past end of buffer");
    std::vector<uint8_t> Out(Data + Pos, Data + Pos + Len);
    Pos += Len;
    return Out;
  }

  size_t remaining() const { return N - Pos; }
  size_t pos() const { return Pos; }
  bool atEnd() const { return Pos == N; }

private:
  const uint8_t *Data;
  size_t N;
  size_t Pos = 0;
};

} // namespace ccomp

#endif // CCOMP_SUPPORT_BYTEIO_H

//===- support/ThreadPool.h - Fixed-size worker pool ------------*- C++ -*-===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small fixed-size thread pool for fanning independent jobs (one
/// compression unit per job) across cores. Deliberately minimal: FIFO
/// queue, no work stealing, no futures — callers that need results
/// write into pre-sized slots indexed by job number, which is what keeps
/// parallel output byte-identical to serial execution.
///
//===----------------------------------------------------------------------===//

#ifndef CCOMP_SUPPORT_THREADPOOL_H
#define CCOMP_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ccomp {

class ThreadPool {
public:
  /// Spawns \p NumThreads workers. Zero is clamped to one.
  explicit ThreadPool(unsigned NumThreads);

  /// Drains the queue, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  unsigned threadCount() const { return static_cast<unsigned>(Workers.size()); }

  /// Enqueues a job. Jobs must not throw: exceptions must be captured by
  /// the job itself (a job that lets one escape terminates the process).
  void submit(std::function<void()> Job);

  /// Blocks until every submitted job has finished.
  void wait();

  /// Runs \p Body(I) for I in [0, N), fanned across the pool, and waits.
  /// Iterations must be independent; each must capture its own errors.
  void parallelFor(size_t N, const std::function<void(size_t)> &Body);

private:
  void workerLoop();

  std::vector<std::thread> Workers;
  std::deque<std::function<void()>> Queue;
  std::mutex Mu;
  std::condition_variable HasWork; ///< Signalled on submit/shutdown.
  std::condition_variable Idle;    ///< Signalled when a job finishes.
  size_t Active = 0;               ///< Jobs currently executing.
  bool ShuttingDown = false;
};

} // namespace ccomp

#endif // CCOMP_SUPPORT_THREADPOOL_H

//===- support/Error.h - Recoverable decode errors -------------*- C++ -*-===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The recoverable-error layer for every decode path. Wire files and
/// BRISC images are *delivery* formats: the bytes arrive over a network
/// or from disk, so a truncated or bit-flipped buffer must surface as a
/// typed error the caller can handle, never as a process abort.
///
/// The model:
///   - Low-level readers (ByteReader, BitReader, MTFDecoder, Huffman
///     decode, BRISC operand unpacking) throw DecodeError on malformed
///     input.
///   - Public decode entry points catch at the frame boundary and return
///     Result<T> (flate::tryDecompress, wire::decompress,
///     brisc::BriscProgram::parse, brisc::tryDecodeToVM,
///     vm::tryDecodeFunction*).
///   - Thin aborting wrappers (flate::decompress, BriscProgram::
///     deserialize, ...) keep the old convenience contract for internal
///     callers that only ever feed buffers the library produced itself.
///
/// reportFatal remains reserved for invariant violations that indicate a
/// bug in this library, not bad input.
///
//===----------------------------------------------------------------------===//

#ifndef CCOMP_SUPPORT_ERROR_H
#define CCOMP_SUPPORT_ERROR_H

#include <cassert>
#include <exception>
#include <new>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

namespace ccomp {

/// A recoverable "this buffer is malformed" error. Thrown by the
/// low-level readers; stored inside Result<T> once a decode entry point
/// has caught it.
class DecodeError : public std::exception {
public:
  explicit DecodeError(std::string Msg) : Msg(std::move(Msg)) {}

  const char *what() const noexcept override { return Msg.c_str(); }
  const std::string &message() const { return Msg; }

private:
  std::string Msg;
};

/// Throws a DecodeError. Kept out-of-line from call sites as a function
/// so checks read as a single line.
[[noreturn]] inline void decodeFail(const std::string &Msg) {
  throw DecodeError(Msg);
}

/// Either a decoded value or a DecodeError.
template <typename T> class Result {
public:
  /*implicit*/ Result(T V) : Val(std::move(V)) {}
  /*implicit*/ Result(DecodeError E) : Err(std::move(E)) {}

  bool ok() const { return Val.has_value(); }
  explicit operator bool() const { return ok(); }

  T &value() {
    assert(ok() && "Result::value() on an error");
    return *Val;
  }
  const T &value() const {
    assert(ok() && "Result::value() on an error");
    return *Val;
  }
  T take() {
    assert(ok() && "Result::take() on an error");
    return std::move(*Val);
  }

  const DecodeError &error() const {
    assert(!ok() && "Result::error() on a value");
    return *Err;
  }

private:
  std::optional<T> Val;
  std::optional<DecodeError> Err;
};

/// Runs \p Fn, converting an escaping DecodeError (and allocation
/// failures from absurd corrupt length fields) into an error Result.
template <typename Fn> auto tryDecode(Fn &&F) -> Result<decltype(F())> {
  using T = decltype(F());
  try {
    return Result<T>(F());
  } catch (const DecodeError &E) {
    return Result<T>(E);
  } catch (const std::bad_alloc &) {
    return Result<T>(DecodeError("decode: allocation failed"));
  } catch (const std::length_error &) {
    return Result<T>(DecodeError("decode: length overflow"));
  }
}

} // namespace ccomp

#endif // CCOMP_SUPPORT_ERROR_H

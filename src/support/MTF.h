//===- support/MTF.h - Move-to-front coding ---------------------*- C++ -*-===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Move-to-front coding (Bentley/Sleator/Tarjan/Wei; Elias) as used by
/// step 3 of the paper's wire format: each stream is MTF-coded in
/// isolation, index 0 denotes a symbol not seen previously (followed by
/// the symbol itself), and indices >= 1 address the dynamic table whose
/// front element is the most recently accessed symbol.
///
//===----------------------------------------------------------------------===//

#ifndef CCOMP_SUPPORT_MTF_H
#define CCOMP_SUPPORT_MTF_H

#include "support/Error.h"
#include "support/Support.h"

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

namespace ccomp {

/// One MTF output token. Index 0 means "new symbol"; the symbol value
/// rides along. Index >= 1 addresses the table (1 = front).
struct MTFToken {
  uint32_t Index = 0;
  uint64_t NewSymbol = 0;
};

/// Stateful MTF encoder over arbitrary 64-bit symbols.
class MTFEncoder {
public:
  MTFToken encode(uint64_t Sym) {
    for (size_t I = 0; I != Table.size(); ++I) {
      if (Table[I] != Sym)
        continue;
      // Move to front.
      Table.erase(Table.begin() + I);
      Table.insert(Table.begin(), Sym);
      return {static_cast<uint32_t>(I + 1), 0};
    }
    Table.insert(Table.begin(), Sym);
    return {0, Sym};
  }

  size_t tableSize() const { return Table.size(); }

private:
  std::vector<uint64_t> Table;
};

/// Stateful MTF decoder mirroring MTFEncoder.
///
/// The decoder runs over attacker-controlled streams, and the encoder
/// never emits Index==0 twice for the same symbol (a seen symbol is
/// always addressed through the table). Both facts are enforced here:
/// a duplicate "new symbol" token and a table grown past the cap are
/// typed DecodeErrors, so a hostile stream of repeated Index==0 tokens
/// cannot balloon the table into a memory bomb.
class MTFDecoder {
public:
  /// Any legitimate stream in this codebase stays far below this; it
  /// exists to bound memory on corrupt input, not to limit alphabets.
  static constexpr size_t DefaultMaxTable = size_t(1) << 20;

  explicit MTFDecoder(size_t MaxTable = DefaultMaxTable)
      : MaxTable(MaxTable) {}

  /// Decodes one token. \p NewSymbol is consulted only when Index == 0.
  /// Throws DecodeError on an index past the table, a duplicate new
  /// symbol, or a table past its cap (all corrupt-stream shapes).
  uint64_t decode(uint32_t Index, uint64_t NewSymbol) {
    if (Index == 0) {
      if (Table.size() >= MaxTable)
        decodeFail("MTFDecoder: table size cap of " +
                   std::to_string(MaxTable) + " exceeded");
      if (!Known.insert(NewSymbol).second)
        decodeFail("MTFDecoder: duplicate new-symbol token");
      Table.insert(Table.begin(), NewSymbol);
      return NewSymbol;
    }
    if (Index > Table.size())
      decodeFail("MTFDecoder: index out of range");
    uint64_t Sym = Table[Index - 1];
    Table.erase(Table.begin() + (Index - 1));
    Table.insert(Table.begin(), Sym);
    return Sym;
  }

  size_t tableSize() const { return Table.size(); }

private:
  size_t MaxTable;
  std::vector<uint64_t> Table;
  std::unordered_set<uint64_t> Known;
};

} // namespace ccomp

#endif // CCOMP_SUPPORT_MTF_H

//===- support/MTF.h - Move-to-front coding ---------------------*- C++ -*-===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Move-to-front coding (Bentley/Sleator/Tarjan/Wei; Elias) as used by
/// step 3 of the paper's wire format: each stream is MTF-coded in
/// isolation, index 0 denotes a symbol not seen previously (followed by
/// the symbol itself), and indices >= 1 address the dynamic table whose
/// front element is the most recently accessed symbol.
///
//===----------------------------------------------------------------------===//

#ifndef CCOMP_SUPPORT_MTF_H
#define CCOMP_SUPPORT_MTF_H

#include "support/Error.h"
#include "support/Support.h"

#include <cstdint>
#include <vector>

namespace ccomp {

/// One MTF output token. Index 0 means "new symbol"; the symbol value
/// rides along. Index >= 1 addresses the table (1 = front).
struct MTFToken {
  uint32_t Index = 0;
  uint64_t NewSymbol = 0;
};

/// Stateful MTF encoder over arbitrary 64-bit symbols.
class MTFEncoder {
public:
  MTFToken encode(uint64_t Sym) {
    for (size_t I = 0; I != Table.size(); ++I) {
      if (Table[I] != Sym)
        continue;
      // Move to front.
      Table.erase(Table.begin() + I);
      Table.insert(Table.begin(), Sym);
      return {static_cast<uint32_t>(I + 1), 0};
    }
    Table.insert(Table.begin(), Sym);
    return {0, Sym};
  }

  size_t tableSize() const { return Table.size(); }

private:
  std::vector<uint64_t> Table;
};

/// Stateful MTF decoder mirroring MTFEncoder.
class MTFDecoder {
public:
  /// Decodes one token. \p NewSymbol is consulted only when Index == 0.
  /// Throws DecodeError on an index past the table (corrupt stream).
  uint64_t decode(uint32_t Index, uint64_t NewSymbol) {
    if (Index == 0) {
      Table.insert(Table.begin(), NewSymbol);
      return NewSymbol;
    }
    if (Index > Table.size())
      decodeFail("MTFDecoder: index out of range");
    uint64_t Sym = Table[Index - 1];
    Table.erase(Table.begin() + (Index - 1));
    Table.insert(Table.begin(), Sym);
    return Sym;
  }

  size_t tableSize() const { return Table.size(); }

private:
  std::vector<uint64_t> Table;
};

} // namespace ccomp

#endif // CCOMP_SUPPORT_MTF_H

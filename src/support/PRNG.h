//===- support/PRNG.h - Deterministic pseudo-random numbers ----*- C++ -*-===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small deterministic PRNG (splitmix64 seeded xorshift128+) so tests,
/// the synthetic corpus generator, and the benchmark harness produce the
/// same inputs on every run and platform.
///
//===----------------------------------------------------------------------===//

#ifndef CCOMP_SUPPORT_PRNG_H
#define CCOMP_SUPPORT_PRNG_H

#include <cstdint>

namespace ccomp {

/// The splitmix64 finalizer as a stateless hash: maps any 64-bit key to
/// a well-mixed 64-bit value. Use it when a draw must be a pure function
/// of its inputs (e.g. per-(frame, attempt) failure and jitter decisions
/// that may race across threads but must not depend on interleaving).
inline uint64_t mix64(uint64_t X) {
  X += 0x9E3779B97F4A7C15ull;
  X = (X ^ (X >> 30)) * 0xBF58476D1CE4E5B9ull;
  X = (X ^ (X >> 27)) * 0x94D049BB133111EBull;
  return X ^ (X >> 31);
}

/// Deterministic 64-bit PRNG.
class PRNG {
public:
  explicit PRNG(uint64_t Seed = 0x9E3779B97F4A7C15ull) {
    // splitmix64 expansion of the seed into the xorshift state.
    auto Split = [&Seed]() {
      Seed += 0x9E3779B97F4A7C15ull;
      uint64_t Z = Seed;
      Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ull;
      Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBull;
      return Z ^ (Z >> 31);
    };
    S0 = Split();
    S1 = Split();
    if (S0 == 0 && S1 == 0)
      S0 = 1;
  }

  uint64_t next() {
    uint64_t X = S0;
    const uint64_t Y = S1;
    S0 = Y;
    X ^= X << 23;
    S1 = X ^ Y ^ (X >> 17) ^ (Y >> 26);
    return S1 + Y;
  }

  /// Uniform value in [0, Bound). Bound must be nonzero.
  uint64_t below(uint64_t Bound) { return next() % Bound; }

  /// Uniform value in [Lo, Hi] inclusive.
  int64_t range(int64_t Lo, int64_t Hi) {
    return Lo + static_cast<int64_t>(below(static_cast<uint64_t>(Hi - Lo + 1)));
  }

  /// Bernoulli draw: true with probability Num/Den.
  bool chance(uint64_t Num, uint64_t Den) { return below(Den) < Num; }

private:
  uint64_t S0, S1;
};

} // namespace ccomp

#endif // CCOMP_SUPPORT_PRNG_H

//===- support/FaultInject.cpp - Deterministic corruption harness --------===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/FaultInject.h"

#include <algorithm>
#include <sstream>

using namespace ccomp;

const char *ccomp::faultKindName(FaultKind K) {
  switch (K) {
  case FaultKind::BitFlip:
    return "bit-flip";
  case FaultKind::ByteSet:
    return "byte-set";
  case FaultKind::Truncate:
    return "truncate";
  case FaultKind::InsertGarbage:
    return "insert-garbage";
  case FaultKind::InflateLength:
    return "inflate-length";
  case FaultKind::ZeroRun:
    return "zero-run";
  }
  return "unknown";
}

std::string Fault::str() const {
  std::ostringstream OS;
  OS << faultKindName(Kind) << " offset=" << Offset << " count=" << Count
     << " seed=" << Seed;
  return OS.str();
}

std::vector<uint8_t> ccomp::applyFault(const std::vector<uint8_t> &Buf,
                                       const Fault &F) {
  std::vector<uint8_t> Out = Buf;
  if (Out.empty())
    return Out;
  PRNG Rng(F.Seed);
  switch (F.Kind) {
  case FaultKind::BitFlip: {
    size_t NBits = Out.size() * 8;
    for (size_t I = 0; I != F.Count; ++I) {
      size_t Bit = (F.Offset + Rng.next()) % NBits;
      Out[Bit / 8] ^= static_cast<uint8_t>(1u << (Bit % 8));
    }
    break;
  }
  case FaultKind::ByteSet:
    for (size_t I = 0; I != F.Count; ++I)
      Out[(F.Offset + Rng.next()) % Out.size()] =
          static_cast<uint8_t>(Rng.next());
    break;
  case FaultKind::Truncate:
    Out.resize(std::min(Out.size(), F.Count));
    break;
  case FaultKind::InsertGarbage: {
    std::vector<uint8_t> Garbage(F.Count);
    for (uint8_t &B : Garbage)
      B = static_cast<uint8_t>(Rng.next());
    size_t At = F.Offset % (Out.size() + 1);
    Out.insert(Out.begin() + At, Garbage.begin(), Garbage.end());
    break;
  }
  case FaultKind::InflateLength: {
    // 0xFF runs keep varint continuation bits set, turning any length or
    // count field they land on into an (almost) maximal value — the
    // "claims 4 GiB, delivers 12 bytes" class of corruption.
    size_t At = F.Offset % Out.size();
    for (size_t I = 0; I != F.Count && At + I < Out.size(); ++I)
      Out[At + I] = 0xFF;
    break;
  }
  case FaultKind::ZeroRun: {
    size_t At = F.Offset % Out.size();
    for (size_t I = 0; I != F.Count && At + I < Out.size(); ++I)
      Out[At + I] = 0;
    break;
  }
  }
  return Out;
}

Fault FaultInjector::plan(size_t Size) {
  Fault F;
  constexpr unsigned NumKinds = 6;
  F.Kind = static_cast<FaultKind>(NextKind % NumKinds);
  NextKind = (NextKind + 1) % NumKinds;
  F.Seed = Rng.next();
  F.Offset = Size ? Rng.below(Size * 8) : 0;
  switch (F.Kind) {
  case FaultKind::BitFlip:
    F.Count = 1 + Rng.below(8);
    break;
  case FaultKind::ByteSet:
    F.Count = 1 + Rng.below(4);
    break;
  case FaultKind::Truncate:
    // Keep a random prefix; biasing toward near-full lengths exercises
    // the deepest decode states.
    F.Count = Size ? Rng.below(Size) : 0;
    if (Size > 4 && Rng.chance(1, 2))
      F.Count = Size - 1 - Rng.below(Size / 4 + 1);
    break;
  case FaultKind::InsertGarbage:
    F.Count = 1 + Rng.below(8);
    break;
  case FaultKind::InflateLength:
  case FaultKind::ZeroRun:
    F.Count = 1 + Rng.below(10);
    break;
  }
  return F;
}

size_t ccomp::corruptionSweep(
    const std::vector<uint8_t> &Valid, uint64_t Seed, unsigned Rounds,
    const std::function<bool(const std::vector<uint8_t> &)> &Decode,
    Fault *LastFault) {
  FaultInjector FI(Seed);
  size_t Rejected = 0;
  for (unsigned I = 0; I != Rounds; ++I) {
    Fault F = FI.plan(Valid.size());
    if (LastFault)
      *LastFault = F;
    if (!Decode(applyFault(Valid, F)))
      ++Rejected;
  }
  return Rejected;
}

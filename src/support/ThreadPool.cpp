//===- support/ThreadPool.cpp - Fixed-size worker pool ------------------------===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

using namespace ccomp;

ThreadPool::ThreadPool(unsigned NumThreads) {
  if (NumThreads == 0)
    NumThreads = 1;
  Workers.reserve(NumThreads);
  for (unsigned I = 0; I != NumThreads; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    ShuttingDown = true;
  }
  HasWork.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::submit(std::function<void()> Job) {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Queue.push_back(std::move(Job));
  }
  HasWork.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> Lock(Mu);
  Idle.wait(Lock, [this] { return Queue.empty() && Active == 0; });
}

void ThreadPool::parallelFor(size_t N,
                             const std::function<void(size_t)> &Body) {
  for (size_t I = 0; I != N; ++I)
    submit([&Body, I] { Body(I); });
  wait();
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> Job;
    {
      std::unique_lock<std::mutex> Lock(Mu);
      HasWork.wait(Lock,
                   [this] { return ShuttingDown || !Queue.empty(); });
      if (Queue.empty())
        return; // Shutting down with nothing left to run.
      Job = std::move(Queue.front());
      Queue.pop_front();
      ++Active;
    }
    Job();
    {
      std::lock_guard<std::mutex> Lock(Mu);
      --Active;
    }
    Idle.notify_all();
  }
}

//===- flate/Flate.cpp - LZ77 + Huffman general compressor ---------------===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//

#include "flate/Flate.h"

#include "support/BitStream.h"
#include "support/ByteIO.h"
#include "support/Huffman.h"
#include "support/Support.h"

#include <algorithm>
#include <cassert>
#include <cstring>

using namespace ccomp;
using namespace ccomp::flate;

namespace {

constexpr unsigned WindowSize = 32768;
constexpr unsigned MinMatch = 3;
constexpr unsigned MaxMatch = 258;
constexpr unsigned ChunkSize = 1 << 16; // One block per 64 KiB of input.

constexpr unsigned NumLitLenSyms = 286; // 0..255 lit, 256 EOB, 257.. len.
constexpr unsigned NumDistSyms = 30;
constexpr unsigned EOB = 256;
constexpr unsigned MaxCodeLen = 14; // 15 is the zero-run escape marker.

// DEFLATE length code table: symbol 257+i covers [Base, Base+2^Extra).
struct LenCode {
  uint16_t Base;
  uint8_t Extra;
};
constexpr LenCode LenCodes[29] = {
    {3, 0},   {4, 0},   {5, 0},   {6, 0},   {7, 0},  {8, 0},  {9, 0},
    {10, 0},  {11, 1},  {13, 1},  {15, 1},  {17, 1}, {19, 2}, {23, 2},
    {27, 2},  {31, 2},  {35, 3},  {43, 3},  {51, 3}, {59, 3}, {67, 4},
    {83, 4},  {99, 4},  {115, 4}, {131, 5}, {163, 5},
    {195, 5}, {227, 5}, {258, 0}};

// DEFLATE distance code table.
struct DistCode {
  uint16_t Base;
  uint8_t Extra;
};
constexpr DistCode DistCodes[30] = {
    {1, 0},     {2, 0},     {3, 0},     {4, 0},     {5, 1},    {7, 1},
    {9, 2},     {13, 2},    {17, 3},    {25, 3},    {33, 4},   {49, 4},
    {65, 5},    {97, 5},    {129, 6},   {193, 6},   {257, 7},  {385, 7},
    {513, 8},   {769, 8},   {1025, 9},  {1537, 9},  {2049, 10},
    {3073, 10}, {4097, 11}, {6145, 11}, {8193, 12}, {12289, 12},
    {16385, 13}, {24577, 13}};

unsigned lengthToSym(unsigned Len) {
  assert(Len >= MinMatch && Len <= MaxMatch);
  // Linear scan over 29 entries is fine for this project's sizes.
  for (unsigned I = 29; I-- > 0;)
    if (Len >= LenCodes[I].Base)
      return 257 + I;
  ccomp_unreachable("bad match length");
}

unsigned distToSym(unsigned Dist) {
  assert(Dist >= 1 && Dist <= WindowSize);
  for (unsigned I = 30; I-- > 0;)
    if (Dist >= DistCodes[I].Base)
      return I;
  ccomp_unreachable("bad match distance");
}

/// One LZ77 token: either a literal byte or a (length, distance) match.
struct Token {
  uint16_t Length = 0; // 0 => literal.
  uint16_t Dist = 0;
  uint8_t Lit = 0;
};

/// Hash-chain LZ77 match finder over the whole input (window-limited).
class MatchFinder {
public:
  MatchFinder(const uint8_t *Data, size_t N, const Options &Opts)
      : Data(Data), N(N), Opts(Opts) {
    Head.assign(HashSize, -1);
    Prev.assign(N, -1);
  }

  /// Finds the longest match at \p Pos; returns length (0 if < MinMatch)
  /// and sets \p Dist.
  unsigned findMatch(size_t Pos, unsigned &Dist) const {
    if (Pos + MinMatch > N)
      return 0;
    unsigned BestLen = MinMatch - 1, BestDist = 0;
    unsigned MaxLen =
        static_cast<unsigned>(std::min<size_t>(MaxMatch, N - Pos));
    int32_t Cand = Head[hashAt(Pos)];
    unsigned Chain = Opts.MaxChainLength;
    while (Cand >= 0 && Chain-- > 0) {
      size_t C = static_cast<size_t>(Cand);
      if (Pos - C > WindowSize)
        break;
      // Quick reject on the byte just past the current best.
      if (BestLen < MaxLen && Data[C + BestLen] == Data[Pos + BestLen]) {
        unsigned Len = 0;
        while (Len < MaxLen && Data[C + Len] == Data[Pos + Len])
          ++Len;
        if (Len > BestLen) {
          BestLen = Len;
          BestDist = static_cast<unsigned>(Pos - C);
          if (Len >= Opts.GoodEnoughLength)
            break;
        }
      }
      Cand = Prev[C];
    }
    if (BestLen < MinMatch)
      return 0;
    Dist = BestDist;
    return BestLen;
  }

  /// Inserts position \p Pos into the hash chains.
  void insert(size_t Pos) {
    if (Pos + MinMatch > N)
      return;
    unsigned H = hashAt(Pos);
    Prev[Pos] = Head[H];
    Head[H] = static_cast<int32_t>(Pos);
  }

private:
  static constexpr unsigned HashBits = 15;
  static constexpr unsigned HashSize = 1u << HashBits;

  unsigned hashAt(size_t Pos) const {
    uint32_t V = Data[Pos] | (Data[Pos + 1] << 8) | (Data[Pos + 2] << 16);
    return (V * 2654435761u) >> (32 - HashBits);
  }

  const uint8_t *Data;
  size_t N;
  Options Opts;
  std::vector<int32_t> Head;
  std::vector<int32_t> Prev;
};

/// Runs greedy-with-lazy LZ77 over Input[Begin, End) and appends tokens.
void tokenize(const uint8_t *Data, size_t Begin, size_t End,
              MatchFinder &MF, const Options &Opts,
              std::vector<Token> &Out) {
  size_t Pos = Begin;
  while (Pos < End) {
    unsigned Dist = 0;
    unsigned Len = MF.findMatch(Pos, Dist);
    // Matches must not run past this block's end: the next block encodes
    // those bytes itself.
    if (Len > End - Pos)
      Len = static_cast<unsigned>(End - Pos);
    if (Len < MinMatch)
      Len = 0;
    if (Len >= MinMatch && Opts.Lazy && Pos + 1 < End) {
      // Lazy evaluation: if the next position has a strictly longer match,
      // emit a literal here instead.
      MF.insert(Pos);
      unsigned Dist2 = 0;
      unsigned Len2 = MF.findMatch(Pos + 1, Dist2);
      if (Len2 > Len) {
        Out.push_back({0, 0, Data[Pos]});
        ++Pos;
        continue;
      }
      // Keep the current match; positions inside it still get indexed.
      Out.push_back({static_cast<uint16_t>(Len),
                     static_cast<uint16_t>(Dist), 0});
      for (size_t I = Pos + 1; I != Pos + Len; ++I)
        MF.insert(I);
      Pos += Len;
      continue;
    }
    if (Len >= MinMatch) {
      Out.push_back({static_cast<uint16_t>(Len),
                     static_cast<uint16_t>(Dist), 0});
      for (size_t I = Pos; I != Pos + Len; ++I)
        MF.insert(I);
      Pos += Len;
      continue;
    }
    Out.push_back({0, 0, Data[Pos]});
    MF.insert(Pos);
    ++Pos;
  }
}

/// Writes a code-length array with zero-run escapes: each nonzero length is
/// 4 bits (1..14); 15 escapes a zero run whose length-1 follows in 6 bits.
void writeLengths(BitWriter &BW, const std::vector<uint8_t> &Lens,
                  unsigned Count) {
  for (unsigned I = 0; I < Count;) {
    if (Lens[I] != 0) {
      BW.writeBits(Lens[I], 4);
      ++I;
      continue;
    }
    unsigned Run = 0;
    while (I + Run < Count && Lens[I + Run] == 0 && Run < 64)
      ++Run;
    BW.writeBits(15, 4);
    BW.writeBits(Run - 1, 6);
    I += Run;
  }
}

std::vector<uint8_t> readLengths(BitReader &BR, unsigned Count) {
  std::vector<uint8_t> Lens(Count, 0);
  unsigned I = 0;
  while (I < Count) {
    unsigned V = BR.readBits(4);
    if (V == 15) {
      unsigned Run = BR.readBits(6) + 1;
      if (I + Run > Count)
        decodeFail("flate: zero run past end of length table");
      I += Run;
      continue;
    }
    Lens[I++] = static_cast<uint8_t>(V);
  }
  return Lens;
}

/// Encodes one block of tokens as a dynamic-Huffman block body.
void writeDynamicBlock(BitWriter &BW, const std::vector<Token> &Toks) {
  std::vector<uint64_t> LitFreq(NumLitLenSyms, 0), DistFreq(NumDistSyms, 0);
  for (const Token &T : Toks) {
    if (T.Length == 0) {
      ++LitFreq[T.Lit];
    } else {
      ++LitFreq[lengthToSym(T.Length)];
      ++DistFreq[distToSym(T.Dist)];
    }
  }
  ++LitFreq[EOB];

  HuffmanCode LitHC(buildHuffmanLengths(LitFreq, MaxCodeLen));
  HuffmanCode DistHC(buildHuffmanLengths(DistFreq, MaxCodeLen));

  writeLengths(BW, LitHC.lengths(), NumLitLenSyms);
  writeLengths(BW, DistHC.lengths(), NumDistSyms);

  for (const Token &T : Toks) {
    if (T.Length == 0) {
      LitHC.encode(BW, T.Lit);
      continue;
    }
    unsigned LSym = lengthToSym(T.Length);
    LitHC.encode(BW, LSym);
    const LenCode &LC = LenCodes[LSym - 257];
    if (LC.Extra)
      BW.writeBits(T.Length - LC.Base, LC.Extra);
    unsigned DSym = distToSym(T.Dist);
    DistHC.encode(BW, DSym);
    const DistCode &DC = DistCodes[DSym];
    if (DC.Extra)
      BW.writeBits(T.Dist - DC.Base, DC.Extra);
  }
  LitHC.encode(BW, EOB);
}

} // namespace

std::vector<uint8_t> flate::compress(ByteSpan Input, const Options &Opts) {
  ByteWriter Frame;
  Frame.writeVarU(Input.size());

  if (Input.empty())
    return Frame.take();

  MatchFinder MF(Input.data(), Input.size(), Opts);
  BitWriter BW;
  size_t Pos = 0;
  while (Pos < Input.size()) {
    size_t End = std::min(Input.size(), Pos + ChunkSize);
    bool Final = End == Input.size();

    std::vector<Token> Toks;
    tokenize(Input.data(), Pos, End, MF, Opts, Toks);

    // Try a dynamic block; fall back to stored if it would be larger.
    BitWriter Trial;
    writeDynamicBlock(Trial, Toks);
    size_t DynBits = Trial.bitCount();
    size_t StoredBits = 16 + (End - Pos) * 8;

    BW.writeBits(Final ? 1 : 0, 1);
    if (DynBits <= StoredBits) {
      BW.writeBits(1, 2); // Dynamic.
      writeDynamicBlock(BW, Toks);
    } else {
      BW.writeBits(0, 2); // Stored.
      BW.writeBits(static_cast<uint32_t>(End - Pos), 17);
      for (size_t I = Pos; I != End; ++I)
        BW.writeBits(Input[I], 8);
    }
    Pos = End;
  }
  std::vector<uint8_t> Body = BW.finish();
  Frame.writeBytes(Body);
  return Frame.take();
}

void flate::compressTo(ByteSpan Input, Sink &Out, const Options &Opts) {
  Out.write(compress(Input, Opts));
}

namespace {

std::vector<uint8_t> decompressOrThrow(ByteSpan Input) {
  ByteReader Frame(Input);
  size_t OrigSize = Frame.readVarU();
  std::vector<uint8_t> Out;
  // The size prefix is untrusted: a corrupt frame can claim multi-GB
  // output. A literal needs >= 1 bit and a match emits <= MaxMatch bytes
  // from a handful of bits, so genuine output is bounded by a small
  // multiple of the remaining input; clamp the up-front reservation to
  // that (the vector still grows on demand, reserve is an optimization).
  size_t MaxPlausible = Frame.remaining() * (8 * MaxMatch) + 64;
  Out.reserve(std::min(OrigSize, MaxPlausible));
  if (OrigSize == 0) {
    if (!Frame.atEnd())
      decodeFail("flate: trailing bytes after empty frame");
    return Out;
  }

  BitReader BR(Frame.rest());
  bool Final = false;
  while (!Final) {
    Final = BR.readBit() != 0;
    unsigned Type = BR.readBits(2);
    if (Type == 0) {
      unsigned Len = BR.readBits(17);
      if (Out.size() + Len > OrigSize)
        decodeFail("flate: output exceeds declared size");
      for (unsigned I = 0; I != Len; ++I)
        Out.push_back(static_cast<uint8_t>(BR.readBits(8)));
      continue;
    }
    if (Type != 1)
      decodeFail("flate: unknown block type");
    std::vector<uint8_t> LitLens = readLengths(BR, NumLitLenSyms);
    std::vector<uint8_t> DistLens = readLengths(BR, NumDistSyms);
    if (!HuffmanCode::isValidLengthSet(LitLens) ||
        !HuffmanCode::isValidLengthSet(DistLens))
      decodeFail("flate: corrupt code length table");
    HuffmanCode LitHC(std::move(LitLens));
    HuffmanCode DistHC(std::move(DistLens));
    for (;;) {
      unsigned Sym = LitHC.decode(BR);
      if (Sym == EOB)
        break;
      if (Sym >= NumLitLenSyms)
        decodeFail("flate: literal/length symbol out of range");
      if (Sym < 256) {
        if (Out.size() >= OrigSize)
          decodeFail("flate: output exceeds declared size");
        Out.push_back(static_cast<uint8_t>(Sym));
        continue;
      }
      const LenCode &LC = LenCodes[Sym - 257];
      unsigned Len = LC.Base + (LC.Extra ? BR.readBits(LC.Extra) : 0);
      unsigned DSym = DistHC.decode(BR);
      const DistCode &DC = DistCodes[DSym];
      unsigned Dist = DC.Base + (DC.Extra ? BR.readBits(DC.Extra) : 0);
      if (Dist > Out.size())
        decodeFail("flate: match distance before start of output");
      if (Out.size() + Len > OrigSize)
        decodeFail("flate: output exceeds declared size");
      size_t From = Out.size() - Dist;
      for (unsigned I = 0; I != Len; ++I)
        Out.push_back(Out[From + I]); // Byte-at-a-time: overlaps are legal.
    }
  }
  if (Out.size() != OrigSize)
    decodeFail("flate: decompressed size mismatch");
  return Out;
}

} // namespace

Result<std::vector<uint8_t>> flate::tryDecompress(ByteSpan Input) {
  return tryDecode([&] { return decompressOrThrow(Input); });
}

std::vector<uint8_t> flate::decompress(ByteSpan Input) {
  Result<std::vector<uint8_t>> R = tryDecompress(Input);
  if (!R.ok())
    reportFatal(R.error().message());
  return R.take();
}

//===- flate/Flate.h - LZ77 + Huffman general compressor -------*- C++ -*-===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A gzip-class general-purpose compressor built from scratch: LZ77 with a
/// 32 KiB window and hash-chain match finding (lazy matching), canonical
/// Huffman coding of the literal/length and distance alphabets, and
/// dynamic-Huffman blocks. The bitstream layout follows DEFLATE's
/// structure but is a self-consistent format, not byte-compatible zlib.
///
/// The paper uses gzip twice: as the final stage of the wire format
/// (section 3, step 5) and as the "gzipped x86" size baseline BRISC is
/// compared against (section 4). This module is the stand-in for both.
///
//===----------------------------------------------------------------------===//

#ifndef CCOMP_FLATE_FLATE_H
#define CCOMP_FLATE_FLATE_H

#include "support/Error.h"
#include "support/Span.h"

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ccomp {
namespace flate {

/// Compression effort knobs.
struct Options {
  /// Maximum hash-chain positions examined per match attempt.
  unsigned MaxChainLength = 256;
  /// Matches at least this long stop the search early.
  unsigned GoodEnoughLength = 64;
  /// Enable one-step lazy matching.
  bool Lazy = true;
};

/// Compresses \p Input (any byte view; vectors convert implicitly). The
/// output is self-framing (records the original size) and always
/// decodable by decompress().
std::vector<uint8_t> compress(ByteSpan Input, const Options &Opts = Options());

/// Compresses \p Input, appending the frame to \p Out (for producers
/// assembling a larger container around the frame).
void compressTo(ByteSpan Input, Sink &Out, const Options &Opts = Options());

/// Decompresses a buffer of unknown provenance. Corrupt input (truncated,
/// bit-flipped, inflated length fields) yields a typed DecodeError; no
/// input crashes, hangs, or reads out of bounds.
Result<std::vector<uint8_t>> tryDecompress(ByteSpan Input);

/// Thin aborting wrapper over tryDecompress() for internal callers that
/// only feed buffers this library produced itself: corrupt input is a
/// fatal error.
std::vector<uint8_t> decompress(ByteSpan Input);

/// Convenience: compressed size in bytes.
inline size_t compressedSize(ByteSpan Input) { return compress(Input).size(); }

} // namespace flate
} // namespace ccomp

#endif // CCOMP_FLATE_FLATE_H

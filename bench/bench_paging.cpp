//===- bench/bench_paging.cpp - The paging scenario (section 1) ----------------===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//
//
// Reproduces the introduction's motivating measurement: "we have seen
// the CPU idle for most of the time during paging, so compressing pages
// can increase total performance even though the CPU must decompress or
// interpret the page contents."
//
// We replay each engine's code-page reference string through an LRU
// demand-paging simulator at several resident-set sizes, convert faults
// to time with a period-accurate disk model, add measured CPU time, and
// find the crossover where interpreting compressed code wins on total
// time.
//
//===----------------------------------------------------------------------===//

#include "../bench/BenchUtil.h"

#include "brisc/Brisc.h"
#include "brisc/Interp.h"
#include "native/Threaded.h"
#include "sim/Paging.h"
#include "vm/Encode.h"

using namespace ccomp;
using namespace ccomp::bench;

int main() {
  const uint32_t PageSize = 512;
  sim::DiskModel Disk; // 12ms per fault.

  // A program with a large code footprint relative to its running time:
  // the synthetic icc class (calls a spread of its functions once).
  std::string Src = corpus::sizeClassSource("icc");
  vm::VMProgram P = mustBuild(Src);

  vm::CodeLayout L = vm::nativeLayout(P);
  vm::RunOptions NOpts;
  NOpts.Layout = &L;
  NOpts.PageSize = PageSize;
  vm::RunResult NR = vm::runProgram(P, NOpts);

  brisc::BriscProgram B = brisc::compress(P);
  vm::RunOptions BOpts;
  BOpts.PageSize = PageSize;
  vm::RunResult BR = brisc::interpret(B, BOpts);
  if (!NR.Ok || !BR.Ok)
    reportFatal("paging bench run failed");

  // CPU seconds, measured on the wall clock (native = threaded code).
  native::NProgram N = native::generate(P);
  double NativeCpu = timeStable([&] { native::run(N); }, 0.1);
  double InterpCpu = timeStable([&] { brisc::interpret(B); }, 0.1);

  std::printf("Paging scenario (intro): total time = CPU + fault service\n");
  std::printf("(page %u B, fault %.0f ms; interp CPU %.1fx native)\n\n",
              PageSize, Disk.FaultSeconds * 1000,
              InterpCpu / NativeCpu);
  // Distinct pages = compulsory (cold-start) faults; the warm columns
  // exclude them (steady-state behaviour once the program has loaded).
  uint64_t NDistinct = NR.PagesTouched, BDistinct = BR.PagesTouched;

  std::printf("%8s | %10s %10s | %10s %10s | %10s %10s\n", "resident",
              "nat cold s", "int cold s", "nat warm s", "int warm s",
              "cold win", "warm win");
  hr();
  for (unsigned Resident :
       {4u, 8u, 16u, 32u, 64u, 128u, 256u, 512u, 1024u}) {
    sim::PagingResult PN = sim::simulateLRU(NR.PageTrace, Resident);
    sim::PagingResult PB = sim::simulateLRU(BR.PageTrace, Resident);
    sim::TotalTime TN = sim::totalTime(NativeCpu, PN, Disk);
    sim::TotalTime TB = sim::totalTime(InterpCpu, PB, Disk);
    double NWarm = NativeCpu +
                   double(PN.Faults > NDistinct ? PN.Faults - NDistinct
                                                : 0) *
                       Disk.FaultSeconds;
    double BWarm = InterpCpu +
                   double(PB.Faults > BDistinct ? PB.Faults - BDistinct
                                                : 0) *
                       Disk.FaultSeconds;
    std::printf("%8u | %10.3f %10.3f | %10.3f %10.3f | %10s %10s\n",
                Resident, TN.total(), TB.total(), NWarm, BWarm,
                TB.total() < TN.total() ? "compressed" : "native",
                BWarm < NWarm ? "compressed" : "native");
  }
  hr();
  std::printf("\nexpected shape: under memory pressure the compressed "
              "form wins (fewer, denser\npages to fault); with ample "
              "memory and a warm cache native wins (only the\n"
              "interpretation overhead remains)\n");
  return 0;
}

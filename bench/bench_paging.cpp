//===- bench/bench_paging.cpp - The paging scenario (section 1) ----------------===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//
//
// Reproduces the introduction's motivating measurement: "we have seen
// the CPU idle for most of the time during paging, so compressing pages
// can increase total performance even though the CPU must decompress or
// interpret the page contents."
//
// We replay each engine's code-page reference string through an LRU
// demand-paging simulator at several resident-set sizes, convert faults
// to time with a period-accurate disk model, add measured CPU time, and
// find the crossover where interpreting compressed code wins on total
// time.
//
// Eight acts, selectable with --act=N[,N...] (default: all):
//   1  intro paging table (native vs interpreted, LRU simulator)
//   2  decode-on-fault store vs simulator prediction
//   3  sub-function page-size sweep
//   4  hot-loop residency payoff (asserted)
//   5  tiered native execution of the hot set (asserted speedup)
//   6  multi-tenant shared frame registry vs private stores (asserted)
//   7  profile-guided page layout vs source order (asserted)
//   8  per-page codec selection vs best single chain (asserted)
//
//===----------------------------------------------------------------------===//

#include "../bench/BenchUtil.h"

#include "brisc/Brisc.h"
#include "brisc/Interp.h"
#include "native/Threaded.h"
#include "pipeline/Payload.h"
#include "sim/Paging.h"
#include "store/CodeStore.h"
#include "store/Resolver.h"
#include "store/Tiered.h"
#include "store/Trace.h"
#include "vm/Encode.h"

#include <set>

using namespace ccomp;
using namespace ccomp::bench;

namespace {

/// A layout that maps every instruction of function I to "page" I, so a
/// PageSize=1 run records a function-granularity reference string — the
/// trace the store's per-function cache actually sees.
vm::CodeLayout functionLayout(const vm::VMProgram &P) {
  vm::CodeLayout L;
  L.FuncBase.reserve(P.Functions.size());
  L.InstrOff.reserve(P.Functions.size());
  for (size_t I = 0; I != P.Functions.size(); ++I) {
    L.FuncBase.push_back(static_cast<uint32_t>(I));
    L.InstrOff.emplace_back(P.Functions[I].Code.size(), 0u);
  }
  L.TotalBytes = static_cast<uint32_t>(P.Functions.size());
  return L;
}

/// Parses --act=N[,N...]; no argument selects every act.
std::set<int> parseActs(int Argc, char **Argv) {
  std::set<int> Acts;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg.rfind("--act=", 0) != 0)
      reportFatal("usage: bench_paging [--act=N[,N...]]  (acts 1-8)");
    std::string List = Arg.substr(6);
    size_t Pos = 0;
    while (Pos < List.size()) {
      size_t Comma = List.find(',', Pos);
      std::string Tok = List.substr(
          Pos, Comma == std::string::npos ? std::string::npos : Comma - Pos);
      if (Tok.empty() || Tok.find_first_not_of("0123456789") !=
                             std::string::npos)
        reportFatal("bench_paging: bad act '" + Tok + "'");
      int N = std::atoi(Tok.c_str());
      if (N < 1 || N > 8)
        reportFatal("bench_paging: act out of range: " + Tok);
      Acts.insert(N);
      Pos = Comma == std::string::npos ? List.size() : Comma + 1;
    }
  }
  if (Acts.empty())
    Acts = {1, 2, 3, 4, 5, 6, 7, 8};
  return Acts;
}

} // namespace

int main(int Argc, char **Argv) {
  std::set<int> Acts = parseActs(Argc, Argv);
  auto runAct = [&](int N) { return Acts.count(N) != 0; };

  const uint32_t PageSize = 512;
  sim::DiskModel Disk; // 12ms per fault.

  // A program with a large code footprint relative to its running time:
  // the synthetic icc class (calls a spread of its functions once).
  std::string Src = corpus::sizeClassSource("icc");
  vm::VMProgram P = mustBuild(Src);
  const char *ChainSpec = "brisc+flate";

  // The reference result every store-backed act must reproduce.
  vm::RunResult Eager = vm::runProgram(P);
  if (!Eager.Ok)
    reportFatal("eager baseline run failed: " + Eager.Trap);

  size_t DecodedBytes = 0;
  for (const vm::VMFunction &F : P.Functions)
    DecodedBytes += store::decodedCostBytes(F);

  if (runAct(1)) {
    vm::CodeLayout L = vm::nativeLayout(P);
    vm::RunOptions NOpts;
    NOpts.Layout = &L;
    NOpts.PageSize = PageSize;
    vm::RunResult NR = vm::runProgram(P, NOpts);

    brisc::BriscProgram B = brisc::compress(P);
    vm::RunOptions BOpts;
    BOpts.PageSize = PageSize;
    vm::RunResult BR = brisc::interpret(B, BOpts);
    if (!NR.Ok || !BR.Ok)
      reportFatal("paging bench run failed");

    // CPU seconds, measured on the wall clock (native = threaded code).
    native::NProgram N = native::generate(P);
    double NativeCpu = timeStable([&] { native::run(N); }, 0.1);
    double InterpCpu = timeStable([&] { brisc::interpret(B); }, 0.1);

    std::printf("Paging scenario (intro): total time = CPU + fault service\n");
    std::printf("(page %u B, fault %.0f ms; interp CPU %.1fx native)\n\n",
                PageSize, Disk.FaultSeconds * 1000, InterpCpu / NativeCpu);
    // Distinct pages = compulsory (cold-start) faults; the warm columns
    // exclude them (steady-state behaviour once the program has loaded).
    uint64_t NDistinct = NR.PagesTouched, BDistinct = BR.PagesTouched;

    std::printf("%8s | %10s %10s | %10s %10s | %10s %10s\n", "resident",
                "nat cold s", "int cold s", "nat warm s", "int warm s",
                "cold win", "warm win");
    hr();
    for (unsigned Resident :
         {4u, 8u, 16u, 32u, 64u, 128u, 256u, 512u, 1024u}) {
      sim::PagingResult PN = sim::simulateLRU(NR.PageTrace, Resident);
      sim::PagingResult PB = sim::simulateLRU(BR.PageTrace, Resident);
      sim::TotalTime TN = sim::totalTime(NativeCpu, PN, Disk);
      sim::TotalTime TB = sim::totalTime(InterpCpu, PB, Disk);
      double NWarm = NativeCpu +
                     double(PN.Faults > NDistinct ? PN.Faults - NDistinct
                                                  : 0) *
                         Disk.FaultSeconds;
      double BWarm = InterpCpu +
                     double(PB.Faults > BDistinct ? PB.Faults - BDistinct
                                                  : 0) *
                         Disk.FaultSeconds;
      std::printf("%8u | %10.3f %10.3f | %10.3f %10.3f | %10s %10s\n",
                  Resident, TN.total(), TB.total(), NWarm, BWarm,
                  TB.total() < TN.total() ? "compressed" : "native",
                  BWarm < NWarm ? "compressed" : "native");
    }
    hr();
    std::printf("\nexpected shape: under memory pressure the compressed "
                "form wins (fewer, denser\npages to fault); with ample "
                "memory and a warm cache native wins (only the\n"
                "interpretation overhead remains)\n");
    // The intro act's machine-readable summary; the CI smoke step runs
    // only this act and fails on a malformed line.
    char Json[512];
    std::snprintf(Json, sizeof(Json),
                  "{\"bench\":\"paging_intro\",\"page_bytes\":%u,"
                  "\"fault_ms\":%.1f,\"native_cpu_s\":%.4f,"
                  "\"interp_cpu_s\":%.4f,\"cpu_ratio\":%.2f,"
                  "\"native_pages\":%llu,\"interp_pages\":%llu}",
                  PageSize, Disk.FaultSeconds * 1000, NativeCpu, InterpCpu,
                  InterpCpu / NativeCpu, (unsigned long long)NDistinct,
                  (unsigned long long)BDistinct);
    emitStats(Json);
  }

  // Second act: the simulator's prediction against the real thing. The
  // decode-on-fault CodeStore executes the same program with function
  // bodies faulted in from compressed frames under a byte budget; the
  // simulator replays a function-granularity reference string through a
  // uniform-slot LRU. Store misses should track predicted faults, with
  // the gap owed to unequal function sizes.
  if (runAct(2)) {
    std::string Err;
    std::unique_ptr<store::CodeStore> Built =
        store::CodeStore::build(P, ChainSpec, store::StoreOptions(), Err);
    if (!Built)
      reportFatal("store build failed: " + Err);
    std::vector<uint8_t> Image = Built->save();

    vm::CodeLayout FL = functionLayout(P);
    vm::RunOptions FOpts;
    FOpts.Layout = &FL;
    FOpts.PageSize = 1;
    vm::RunResult FR = vm::runProgram(P, FOpts);
    if (!FR.Ok)
      reportFatal("function-trace run failed");

    size_t MeanCost = DecodedBytes / P.Functions.size();

    std::printf("\nDecode-on-fault store vs simulator (chain %s, %zu funcs, "
                "%zu -> %zu bytes)\n",
                ChainSpec, P.Functions.size(), DecodedBytes,
                Built->frameBytes());
    std::printf("%8s %12s | %10s %10s | %10s %10s %12s\n", "resident",
                "budget B", "sim fault", "real miss", "hit rate", "decode ms",
                "est total s");
    hr();
    for (unsigned Resident : {2u, 4u, 8u, 16u, 32u, 64u}) {
      if (Resident > P.Functions.size())
        break;
      uint64_t SimFaults = sim::simulateLRU(FR.PageTrace, Resident).Faults;

      store::StoreOptions SO;
      SO.Shards = 1; // One LRU list, same policy shape as the simulator.
      SO.CacheBudgetBytes = Resident * MeanCost;
      Result<std::unique_ptr<store::CodeStore>> L =
          store::CodeStore::tryLoad(Image, SO);
      if (!L.ok())
        reportFatal("store load failed: " + L.error().message());
      std::unique_ptr<store::CodeStore> S = L.take();

      vm::RunResult R;
      double Cpu = timeIt([&] { R = store::runFromStore(*S); });
      if (!R.Ok || R.Output != Eager.Output || R.ExitCode != Eager.ExitCode)
        reportFatal("store-backed run diverged: " + R.Trap);
      store::StoreStats St = S->stats();
      sim::TotalTime T =
          sim::storeTotalTime(Cpu, St.Misses, St.DecodeNanos, Disk);
      std::printf("%8u %12zu | %10llu %10llu | %9.1f%% %10.2f %12.3f\n",
                  Resident, SO.CacheBudgetBytes,
                  (unsigned long long)SimFaults, (unsigned long long)St.Misses,
                  St.hitRate() * 100, double(St.DecodeNanos) / 1e6, T.total());
      // One machine-readable line per configuration for harness scripts;
      // emitStats validates the JSON so the format stays locked.
      char Json[512];
      std::snprintf(Json, sizeof(Json),
                    "{\"bench\":\"paging_store\",\"chain\":\"%s\","
                    "\"resident_funcs\":%u,\"budget_bytes\":%zu,\"faults\":%llu,"
                    "\"hits\":%llu,\"hit_rate\":%.4f,\"decodes\":%llu,"
                    "\"evictions\":%llu,\"decode_ms\":%.3f,\"cpu_s\":%.4f,"
                    "\"est_total_s\":%.4f,\"sim_faults\":%llu}",
                    jsonEscape(ChainSpec).c_str(), Resident,
                    SO.CacheBudgetBytes, (unsigned long long)St.Misses,
                    (unsigned long long)St.Hits, St.hitRate(),
                    (unsigned long long)St.Decodes,
                    (unsigned long long)St.Evictions,
                    double(St.DecodeNanos) / 1e6, Cpu, T.total(),
                    (unsigned long long)SimFaults);
      emitStats(Json);
    }
    hr();
  }

  // Third act: sub-function fault granularity. The same program pages at
  // several page-size targets under one constrained budget; smaller
  // pages fault more often but each fault fetches and decodes less, and
  // the resident set tracks the hot *blocks* instead of whole
  // functions. The time model charges a seek per fault plus transfer
  // for the compressed bytes actually fetched.
  if (runAct(3)) {
    std::string Err;
    size_t SweepBudget = DecodedBytes / 8;
    std::printf("\nPage-size sweep (chain %s, budget %zu B)\n", ChainSpec,
                SweepBudget);
    std::printf("%10s | %7s %12s | %10s %10s | %10s %12s\n", "page B",
                "frames", "frame B", "miss", "hit rate", "decode ms",
                "est total s");
    hr();
    for (size_t Target : {size_t(64), size_t(256), size_t(4096), size_t(0)}) {
      store::StoreOptions SO;
      SO.Shards = 1;
      SO.CacheBudgetBytes = SweepBudget;
      SO.PageTargetBytes = Target;
      std::unique_ptr<store::CodeStore> S =
          store::CodeStore::build(P, ChainSpec, SO, Err);
      if (!S)
        reportFatal("paged store build failed: " + Err);
      vm::RunResult R;
      double Cpu = timeIt([&] { R = store::runFromStore(*S); });
      if (!R.Ok || R.Output != Eager.Output || R.ExitCode != Eager.ExitCode)
        reportFatal("paged store run diverged: " + R.Trap);
      store::StoreStats St = S->stats();
      sim::TotalTime T = sim::pagedStoreTotalTime(Cpu, St.Misses,
                                                  St.FetchedBytes,
                                                  St.DecodeNanos, Disk);
      std::printf("%10zu | %7u %12zu | %10llu %9.1f%% | %10.2f %12.3f\n",
                  Target, S->frameCount(), S->frameBytes(),
                  (unsigned long long)St.Misses, St.hitRate() * 100,
                  double(St.DecodeNanos) / 1e6, T.total());
      char Json[512];
      std::snprintf(Json, sizeof(Json),
                    "{\"bench\":\"paging_page_sweep\",\"chain\":\"%s\","
                    "\"page_target\":%zu,\"budget_bytes\":%zu,\"frames\":%u,"
                    "\"frame_bytes\":%zu,\"decoded_bytes\":%zu,"
                    "\"faults\":%llu,\"hit_rate\":%.4f,\"fetched_bytes\":%llu,"
                    "\"decode_ms\":%.3f,\"cpu_s\":%.4f,\"est_total_s\":%.4f}",
                    jsonEscape(ChainSpec).c_str(), Target, SweepBudget,
                    S->frameCount(), S->frameBytes(), DecodedBytes,
                    (unsigned long long)St.Misses, St.hitRate(),
                    (unsigned long long)St.FetchedBytes,
                    double(St.DecodeNanos) / 1e6, Cpu, T.total());
      emitStats(Json);
    }
    hr();
  }

  // Fourth act (the granularity payoff, asserted): a function bigger
  // than one page executes its hot loop with strictly fewer decoded
  // bytes resident than function-granularity faulting under the same
  // budget, because only the loop's page needs to stay in. The wep
  // class is used here: its largest function (main) exceeds one 4 KiB
  // page.
  if (runAct(4)) {
    std::string Err;
    const size_t PageTarget = 4096;
    vm::VMProgram WP = mustBuild(corpus::sizeClassSource("wep"));
    size_t BigId = 0, BigFixed = 0;
    for (size_t I = 0; I != WP.Functions.size(); ++I) {
      size_t Bytes = 0;
      for (const vm::Instr &In : WP.Functions[I].Code)
        Bytes += vm::encodedSize(In);
      if (Bytes > BigFixed) {
        BigFixed = Bytes;
        BigId = I;
      }
    }
    const vm::VMFunction &Big = WP.Functions[BigId];
    // The hot loop lives in the largest basic-block page; resolving any
    // instruction inside it faults exactly that page.
    std::vector<pipeline::PageChunk> Chunks =
        pipeline::splitFunctionPages(Big, PageTarget);
    size_t HotPage = 0;
    for (size_t K = 0; K != Chunks.size(); ++K)
      if (Chunks[K].Code.size() > Chunks[HotPage].Code.size())
        HotPage = K;
    uint32_t LoopIdx = Chunks[HotPage].FirstInstr;

    size_t Budget = store::decodedCostBytes(Big);
    auto residentAfterHotLoop = [&](size_t Target) -> uint64_t {
      store::StoreOptions SO;
      SO.Shards = 1;
      SO.CacheBudgetBytes = Budget;
      SO.PageTargetBytes = Target;
      std::unique_ptr<store::CodeStore> S =
          store::CodeStore::build(WP, ChainSpec, SO, Err);
      if (!S)
        reportFatal("hot-loop store build failed: " + Err);
      for (int Iter = 0; Iter != 64; ++Iter) {
        Result<vm::CodeSpan> Sp = S->faultSpan(
            static_cast<uint32_t>(BigId), LoopIdx);
        if (!Sp.ok())
          reportFatal("hot-loop faultSpan failed: " + Sp.error().message());
      }
      return S->stats().ResidentBytes;
    };
    uint64_t PagedResident = residentAfterHotLoop(PageTarget);
    uint64_t WholeResident = residentAfterHotLoop(0);
    std::printf("\nHot-loop residency (wep largest fn '%s', %zu fixed B, "
                "%zu pages @ %zu B target, budget %zu B)\n",
                Big.Name.c_str(), BigFixed, Chunks.size(), PageTarget,
                Budget);
    std::printf("  page-granular resident: %llu B, function-granular "
                "resident: %llu B\n",
                (unsigned long long)PagedResident,
                (unsigned long long)WholeResident);
    char Json[512];
    std::snprintf(Json, sizeof(Json),
                  "{\"bench\":\"paging_hot_loop\",\"chain\":\"%s\","
                  "\"fn\":\"%s\",\"fn_fixed_bytes\":%zu,\"page_target\":%zu,"
                  "\"pages\":%zu,\"budget_bytes\":%zu,"
                  "\"resident_paged\":%llu,\"resident_whole\":%llu}",
                  jsonEscape(ChainSpec).c_str(),
                  jsonEscape(Big.Name).c_str(), BigFixed, PageTarget,
                  Chunks.size(), Budget,
                  (unsigned long long)PagedResident,
                  (unsigned long long)WholeResident);
    emitStats(Json);
    if (Chunks.size() < 2)
      reportFatal("hot-loop act: largest function fits one page; the "
                  "granularity claim is vacuous");
    if (PagedResident >= WholeResident)
      reportFatal("hot-loop act: page-granular residency is not strictly "
                  "below function-granular residency");
  }

  // Fifth act (the tier payoff, asserted): on the hot-loop workload a
  // persistent TieredResolver — warm heat counters, compiled units kept
  // across reps, fresh Machine per rep, exactly how a resident runtime
  // would serve repeated requests — must beat interpret-only execution
  // out of the same store on the wall clock, and must produce the
  // byte-identical RunResult it promises.
  if (runAct(5)) {
    std::string Err;
    vm::VMProgram WP = mustBuild(corpus::sizeClassSource("wep"));
    vm::RunResult WEager = vm::runProgram(WP);
    if (!WEager.Ok)
      reportFatal("tiered act: eager wep run failed: " + WEager.Trap);

    // Two stores from one image so the tier's heat/stats cannot bleed
    // into the interpret-only baseline.
    std::unique_ptr<store::CodeStore> Built =
        store::CodeStore::build(WP, ChainSpec, store::StoreOptions(), Err);
    if (!Built)
      reportFatal("tiered act: store build failed: " + Err);
    std::vector<uint8_t> Image = Built->save();
    auto loadStore = [&]() {
      Result<std::unique_ptr<store::CodeStore>> L =
          store::CodeStore::tryLoad(Image, store::StoreOptions());
      if (!L.ok())
        reportFatal("tiered act: store load failed: " + L.error().message());
      return L.take();
    };
    std::unique_ptr<store::CodeStore> SInterp = loadStore();
    std::unique_ptr<store::CodeStore> STier = loadStore();

    store::TierOptions TO;
    TO.HotThreshold = 4;
    store::TieredResolver Rv(*STier, TO);
    auto tieredOnce = [&]() {
      vm::RunOptions O;
      O.Resolver = &Rv;
      vm::Machine M(STier->skeleton(), O);
      return M.run();
    };

    // Correctness before speed: the tiered result must equal eager
    // interpretation bit for bit, including the step count.
    vm::RunResult TR = tieredOnce();
    if (!TR.Ok || TR.Output != WEager.Output ||
        TR.ExitCode != WEager.ExitCode || TR.Steps != WEager.Steps)
      reportFatal("tiered act: tiered run diverged from eager: " + TR.Trap);

    double InterpS =
        timeStable([&] { store::runFromStore(*SInterp); }, 0.2);
    double TieredS = timeStable([&] { tieredOnce(); }, 0.2);

    store::TierStats TS = Rv.tierStats();
    double Speedup = InterpS / TieredS;
    store::StoreStats St = STier->stats();
    sim::JitModel Jit;
    sim::TotalTime T = sim::tieredTotalTime(TieredS, St.Misses,
                                            St.FetchedBytes, St.DecodeNanos,
                                            TS.CompiledBytesTotal, Disk, Jit);
    std::printf("\nTiered execution (wep, chain %s, hot threshold %llu)\n",
                ChainSpec, (unsigned long long)TO.HotThreshold);
    std::printf("  interpret-only: %.4f s/run, tiered: %.4f s/run "
                "(%.2fx), %llu compiles, %llu native steps\n",
                InterpS, TieredS, Speedup,
                (unsigned long long)TS.Compiles,
                (unsigned long long)TS.NativeSteps);
    char Json[512];
    std::snprintf(Json, sizeof(Json),
                  "{\"bench\":\"paging_tiered\",\"chain\":\"%s\","
                  "\"hot_threshold\":%llu,\"interp_s\":%.5f,"
                  "\"tiered_s\":%.5f,\"speedup\":%.3f,\"compiles\":%llu,"
                  "\"compiled_bytes\":%llu,\"native_steps\":%llu,"
                  "\"tier_transfers\":%llu,\"est_total_s\":%.4f}",
                  jsonEscape(ChainSpec).c_str(),
                  (unsigned long long)TO.HotThreshold, InterpS, TieredS,
                  Speedup, (unsigned long long)TS.Compiles,
                  (unsigned long long)TS.CompiledBytesTotal,
                  (unsigned long long)TS.NativeSteps,
                  (unsigned long long)TS.TierTransfers, T.total());
    emitStats(Json);
    if (TS.Compiles == 0)
      reportFatal("tiered act: nothing compiled; the tier never engaged");
    if (TieredS >= InterpS)
      reportFatal("tiered act: tiered wall time is not strictly below "
                  "interpret-only");
  }

  // Sixth act (multi-tenant sharing, asserted): N CodeStore views over
  // one shared FrameRegistry serve the same program as N private
  // stores, but the registry decodes each frame once process-wide and
  // keeps one resident copy. Under a budget that holds the whole
  // module, the shared decode count must equal the single-tenant count
  // — independent of N — and shared resident bytes must stay strictly
  // below N times the private figure for every N >= 2. A tight budget
  // sweeps the other end: tenants contend for one small cache instead
  // of each owning a small cache.
  if (runAct(6)) {
    std::string Err;
    std::unique_ptr<store::CodeStore> Built =
        store::CodeStore::build(P, ChainSpec, store::StoreOptions(), Err);
    if (!Built)
      reportFatal("shared act: store build failed: " + Err);
    std::vector<uint8_t> Image = Built->save();

    const size_t HugeBudget = DecodedBytes * 2;
    const size_t TightBudget = DecodedBytes / 8;
    uint64_t OneTenantDecodes = 0; // Huge-budget N=1 reference.

    std::printf("\nMulti-tenant shared registry (chain %s, %zu decoded B)\n",
                ChainSpec, DecodedBytes);
    std::printf("%7s %10s | %10s %12s | %10s %12s\n", "tenants", "budget B",
                "shr decode", "shr res B", "prv decode", "prv res B");
    hr();
    for (size_t Budget : {HugeBudget, TightBudget}) {
      for (unsigned N : {1u, 2u, 8u}) {
        store::RegistryOptions RO;
        RO.CacheBudgetBytes = Budget;
        auto Reg = std::make_shared<store::FrameRegistry>(RO);
        std::vector<std::unique_ptr<store::CodeStore>> Tenants;
        for (unsigned I = 0; I != N; ++I) {
          store::StoreOptions SO;
          SO.SharedRegistry = Reg;
          Result<std::unique_ptr<store::CodeStore>> L =
              store::CodeStore::tryLoad(Image, SO);
          if (!L.ok())
            reportFatal("shared act: tenant load failed: " +
                        L.error().message());
          Tenants.push_back(L.take());
        }
        double Cpu = timeIt([&] {
          for (auto &S : Tenants) {
            vm::RunResult R = store::runFromStore(*S);
            if (!R.Ok || R.Output != Eager.Output ||
                R.ExitCode != Eager.ExitCode || R.Steps != Eager.Steps)
              reportFatal("shared act: tenant run diverged: " + R.Trap);
          }
        });
        store::RegistryStats RS = Reg->stats();

        // The private control: the same N runs, each store owning a
        // cache of the same budget.
        uint64_t PrivDecodes = 0, PrivResident = 0;
        for (unsigned I = 0; I != N; ++I) {
          store::StoreOptions SO;
          SO.CacheBudgetBytes = Budget;
          Result<std::unique_ptr<store::CodeStore>> L =
              store::CodeStore::tryLoad(Image, SO);
          if (!L.ok())
            reportFatal("shared act: private load failed: " +
                        L.error().message());
          std::unique_ptr<store::CodeStore> S = L.take();
          vm::RunResult R = store::runFromStore(*S);
          if (!R.Ok || R.Output != Eager.Output)
            reportFatal("shared act: private run diverged: " + R.Trap);
          store::StoreStats St = S->stats();
          PrivDecodes += St.Decodes;
          PrivResident += St.ResidentBytes;
        }

        sim::TotalTime T = sim::sharedStoreTotalTime(Cpu, RS.Decodes,
                                                     RS.DecodeNanos, Disk);
        std::printf("%7u %10zu | %10llu %12llu | %10llu %12llu\n", N, Budget,
                    (unsigned long long)RS.Decodes,
                    (unsigned long long)RS.ResidentBytes,
                    (unsigned long long)PrivDecodes,
                    (unsigned long long)PrivResident);
        char Json[512];
        std::snprintf(Json, sizeof(Json),
                      "{\"bench\":\"paging_shared\",\"chain\":\"%s\","
                      "\"tenants\":%u,\"budget_bytes\":%zu,"
                      "\"shared_decodes\":%llu,\"shared_resident\":%llu,"
                      "\"private_decodes\":%llu,\"private_resident\":%llu,"
                      "\"cpu_s\":%.4f,\"est_total_s\":%.4f}",
                      jsonEscape(ChainSpec).c_str(), N, Budget,
                      (unsigned long long)RS.Decodes,
                      (unsigned long long)RS.ResidentBytes,
                      (unsigned long long)PrivDecodes,
                      (unsigned long long)PrivResident, Cpu, T.total());
        emitStats(Json);

        if (Budget == HugeBudget) {
          if (N == 1)
            OneTenantDecodes = RS.Decodes;
          else if (RS.Decodes != OneTenantDecodes)
            reportFatal("shared act: shared decode count scaled with "
                        "tenants under a full-module budget");
        }
        if (N >= 2 && RS.ResidentBytes >= PrivResident)
          reportFatal("shared act: shared resident bytes are not strictly "
                      "below N private stores'");
      }
    }
    hr();
  }

  // Seventh act (profile-guided layout, asserted): record one
  // block-granular trace of the program, rebuild the paged store with
  // the trace driving splitFunctionPages, and replay the same workload.
  // Clustering co-hot blocks must strictly reduce BOTH demand faults
  // and the decoded bytes left resident, against the source-order
  // layout at the same page target and budget — the Ozturk et al.
  // claim, measured on this corpus.
  if (runAct(7)) {
    std::string Err;
    const size_t LayoutTarget = 96;
    store::TraceRunResult Recorded = store::recordTrace(P);
    if (!Recorded.Run.Ok)
      reportFatal("layout act: profiling run failed: " + Recorded.Run.Trap);
    if (Recorded.Run.Output != Eager.Output ||
        Recorded.Run.ExitCode != Eager.ExitCode)
      reportFatal("layout act: profiling run diverged from eager");

    auto measure = [&](const pipeline::ExecutionTrace *Profile, uint64_t &Misses,
                       uint64_t &Resident) {
      store::StoreOptions SO;
      SO.Shards = 1;
      // A budget that holds everything: Misses counts each distinct
      // page's compulsory fault and ResidentBytes counts every decoded
      // byte the run ever needed — the layout signal, undiluted by
      // eviction luck.
      SO.CacheBudgetBytes = DecodedBytes * 2;
      SO.PageTargetBytes = LayoutTarget;
      SO.Profile = Profile;
      std::unique_ptr<store::CodeStore> S =
          store::CodeStore::build(P, ChainSpec, SO, Err);
      if (!S)
        reportFatal("layout act: store build failed: " + Err);
      vm::RunResult R = store::runFromStore(*S);
      if (!R.Ok || R.Output != Eager.Output ||
          R.ExitCode != Eager.ExitCode || R.Steps != Eager.Steps)
        reportFatal("layout act: store-backed run diverged: " + R.Trap);
      store::StoreStats St = S->stats();
      Misses = St.Misses;
      Resident = St.ResidentBytes;
      return S->frameCount();
    };
    uint64_t SrcMisses = 0, SrcResident = 0, ProfMisses = 0, ProfResident = 0;
    uint32_t SrcFrames = measure(nullptr, SrcMisses, SrcResident);
    uint32_t ProfFrames =
        measure(&Recorded.Trace, ProfMisses, ProfResident);

    std::printf("\nProfile-guided layout (icc, chain %s, %zu B pages, "
                "%zu trace events)\n",
                ChainSpec, LayoutTarget, Recorded.Trace.Events.size());
    std::printf("  source order: %llu faults, %llu resident B (%u frames)\n"
                "  trace-guided: %llu faults, %llu resident B (%u frames)\n",
                (unsigned long long)SrcMisses,
                (unsigned long long)SrcResident, SrcFrames,
                (unsigned long long)ProfMisses,
                (unsigned long long)ProfResident, ProfFrames);
    char Json[512];
    std::snprintf(Json, sizeof(Json),
                  "{\"bench\":\"paging_layout\",\"chain\":\"%s\","
                  "\"page_target\":%zu,\"trace_events\":%zu,"
                  "\"src_faults\":%llu,\"src_resident\":%llu,"
                  "\"src_frames\":%u,\"prof_faults\":%llu,"
                  "\"prof_resident\":%llu,\"prof_frames\":%u}",
                  jsonEscape(ChainSpec).c_str(), LayoutTarget,
                  Recorded.Trace.Events.size(),
                  (unsigned long long)SrcMisses,
                  (unsigned long long)SrcResident, SrcFrames,
                  (unsigned long long)ProfMisses,
                  (unsigned long long)ProfResident, ProfFrames);
    emitStats(Json);
    if (ProfMisses >= SrcMisses)
      reportFatal("layout act: trace-guided faults are not strictly below "
                  "source order");
    if (ProfResident >= SrcResident)
      reportFatal("layout act: trace-guided resident bytes are not "
                  "strictly below source order");
  }

  // Eighth act (per-page codec selection, asserted): build the paged
  // store once per candidate chain used globally, then once with
  // per-frame selection over the whole candidate set (decode budget 0 =
  // pure size, deterministic). The selected container's frame bytes
  // must come in strictly below the best single chain — the win only a
  // per-frame manifest can record — and both the selected store and its
  // saved/reloaded v4 image must execute byte-identically to eager.
  if (runAct(8)) {
    std::string Err;
    const size_t SelTarget = 256;
    const std::vector<std::string> Candidates = {
        "vm-compact",      "vm-compact+flate", "flate",
        "bwt-dict",        "brisc-ctx",        "brisc-ctx+flate"};

    std::printf("\nPer-page codec selection (icc, %zu B pages)\n", SelTarget);
    std::printf("%-18s %7s %12s\n", "chain", "frames", "frame B");
    hr();
    size_t BestSingle = ~size_t(0);
    std::string BestSpec;
    for (const std::string &CS : Candidates) {
      store::StoreOptions SO;
      SO.PageTargetBytes = SelTarget;
      SO.CacheBudgetBytes = DecodedBytes * 2;
      std::unique_ptr<store::CodeStore> S =
          store::CodeStore::build(P, CS, SO, Err);
      if (!S)
        reportFatal("selection act: build with '" + CS + "' failed: " + Err);
      vm::RunResult R = store::runFromStore(*S);
      if (!R.Ok || R.Output != Eager.Output || R.ExitCode != Eager.ExitCode ||
          R.Steps != Eager.Steps)
        reportFatal("selection act: run with '" + CS + "' diverged: " +
                    R.Trap);
      std::printf("%-18s %7u %12zu\n", CS.c_str(), S->frameCount(),
                  S->frameBytes());
      if (S->frameBytes() < BestSingle) {
        BestSingle = S->frameBytes();
        BestSpec = CS;
      }
    }

    store::StoreOptions SO;
    SO.PageTargetBytes = SelTarget;
    SO.CacheBudgetBytes = DecodedBytes * 2;
    SO.CandidateChains.assign(Candidates.begin() + 1, Candidates.end());
    std::unique_ptr<store::CodeStore> Sel =
        store::CodeStore::build(P, Candidates[0], SO, Err);
    if (!Sel)
      reportFatal("selection act: per-page build failed: " + Err);
    vm::RunResult SelR = store::runFromStore(*Sel);
    if (!SelR.Ok || SelR.Output != Eager.Output ||
        SelR.ExitCode != Eager.ExitCode || SelR.Steps != Eager.Steps)
      reportFatal("selection act: per-page run diverged: " + SelR.Trap);
    // The saved v4 image must reload and execute identically too.
    std::vector<uint8_t> Image = Sel->save();
    Result<std::unique_ptr<store::CodeStore>> Re =
        store::CodeStore::tryLoad(Image, store::StoreOptions());
    if (!Re.ok())
      reportFatal("selection act: v4 reload failed: " + Re.error().message());
    vm::RunResult ReR = store::runFromStore(*Re.value());
    if (!ReR.Ok || ReR.Output != Eager.Output ||
        ReR.ExitCode != Eager.ExitCode || ReR.Steps != Eager.Steps)
      reportFatal("selection act: reloaded v4 run diverged: " + ReR.Trap);
    std::printf("%-18s %7u %12zu  (best single: %s, %zu B)\n", "per-page",
                Sel->frameCount(), Sel->frameBytes(), BestSpec.c_str(),
                BestSingle);
    hr();
    char Json[512];
    std::snprintf(Json, sizeof(Json),
                  "{\"bench\":\"paging_perpage\",\"page_target\":%zu,"
                  "\"chains\":%zu,\"best_single_chain\":\"%s\","
                  "\"best_single_bytes\":%zu,\"perpage_bytes\":%zu,"
                  "\"perpage\":%s,\"frames\":%u}",
                  SelTarget, Candidates.size(),
                  jsonEscape(BestSpec).c_str(), BestSingle,
                  Sel->frameBytes(),
                  Sel->perPageChains() ? "true" : "false",
                  Sel->frameCount());
    emitStats(Json);
    if (!Sel->perPageChains())
      reportFatal("selection act: selection was uniform; nothing to show");
    if (Sel->frameBytes() >= BestSingle)
      reportFatal("selection act: per-page frame bytes are not strictly "
                  "below the best single chain");
  }
  return 0;
}

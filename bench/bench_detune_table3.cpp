//===- bench/bench_detune_table3.cpp - Section 6's de-tuned RISC table ---------===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//
//
// Reproduces the section-6 experiment: progressively de-tune the
// abstract machine by removing immediate instructions (keeping only
// load-immediate) and/or register-displacement addressing (keeping only
// load/store-indirect), recompile, compress with BRISC, and compare
// compressed size against each variant's own native size.
//
//   paper:  RISC 0.54  -immediates 0.56  -regdisp 0.57  -both 0.59
//
// The claim being tested: a minimal abstract machine compresses nearly
// as well as one with the usual ad hoc size features.
//
//===----------------------------------------------------------------------===//

#include "../bench/BenchUtil.h"

#include "brisc/Brisc.h"
#include "vm/Encode.h"

using namespace ccomp;
using namespace ccomp::bench;

int main() {
  std::printf("Table 3 (section 6): de-tuned abstract machine variants\n");
  std::printf("(compressed BRISC size / that variant's own native size; "
              "input: the icc size class)\n\n");

  struct Variant {
    const char *Name;
    codegen::Options Opts;
  };
  Variant Variants[4];
  Variants[0] = {"RISC", {}};
  Variants[1] = {"minus immediates", {}};
  Variants[1].Opts.NoImmediates = true;
  Variants[2] = {"minus register-displacement", {}};
  Variants[2].Opts.NoRegDisp = true;
  Variants[3] = {"minus both", {}};
  Variants[3].Opts.NoImmediates = true;
  Variants[3].Opts.NoRegDisp = true;

  std::string Src = corpus::sizeClassSource("icc");

  // All rows normalize to the TUNED machine's native size: the question
  // is whether removing the ad hoc size features makes the *compressed*
  // program materially bigger.
  size_t BaseNative = 0;
  std::printf("%-30s %10s %10s %12s\n", "abstract machine variant",
              "native", "BRISC", "vs RISC nat.");
  hr();
  for (const Variant &V : Variants) {
    vm::VMProgram P = mustBuild(Src, V.Opts);
    size_t Native = vm::encodeProgramCompact(P).size();
    if (BaseNative == 0)
      BaseNative = Native;
    brisc::CompressStats S;
    brisc::compress(P, brisc::CompressOptions(), &S);
    std::printf("%-30s %10zu %10zu %15.2f\n", V.Name, Native,
                S.TotalBytes, double(S.TotalBytes) / double(BaseNative));
  }
  hr();
  std::printf("paper: 0.54 / 0.56 / 0.57 / 0.59 (minimal machines "
              "compress nearly as well)\n");
  return 0;
}

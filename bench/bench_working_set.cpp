//===- bench/bench_working_set.cpp - Working-set reduction (section 1/4) -------===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//
//
// Reproduces the in-text claim: interpreting BRISC directly cuts the
// code working set by over 40% at a ~12x time penalty. We execute each
// input natively (tracking the code pages of the compact/CISC encoding)
// and by in-place interpretation (tracking BRISC image pages, with the
// dictionary and Markov tables always resident), then compare page
// counts. Inputs are program-scale (the linked corpus suite and the
// synthetic size classes): working sets are meaningless for toy
// programs that fit in a page or two.
//
//===----------------------------------------------------------------------===//

#include "../bench/BenchUtil.h"

#include "brisc/Brisc.h"
#include "brisc/Interp.h"
#include "vm/Encode.h"

using namespace ccomp;
using namespace ccomp::bench;

namespace {

void row(const char *Name, const vm::VMProgram &P, uint32_t PageSize) {
  vm::CodeLayout L = vm::compactLayout(P);
  vm::RunOptions NOpts;
  NOpts.Layout = &L;
  NOpts.PageSize = PageSize;
  vm::RunResult NR = vm::runProgram(P, NOpts);

  brisc::BriscProgram B = brisc::compress(P);
  vm::RunOptions BOpts;
  BOpts.PageSize = PageSize;
  vm::RunResult BR = brisc::interpret(B, BOpts);
  if (!NR.Ok || !BR.Ok)
    reportFatal(std::string("working-set run failed for ") + Name);

  double Cut =
      100.0 * (1.0 - double(BR.PagesTouched) / double(NR.PagesTouched));
  std::printf("%-8s %12llu %12llu %11.1f%%\n", Name,
              (unsigned long long)NR.PagesTouched,
              (unsigned long long)BR.PagesTouched, Cut);
}

} // namespace

int main() {
  const uint32_t PageSize = 1024;
  std::printf("Working set: code pages touched during execution "
              "(page size %u bytes)\n", PageSize);
  std::printf("(BRISC pages include the always-resident dictionary and "
              "Markov tables)\n\n");
  std::printf("%-8s %12s %12s %12s\n", "input", "native pages",
              "BRISC pages", "reduction");
  hr();
  {
    vm::VMProgram P = suiteProgram();
    row("suite", P, PageSize);
  }
  for (const char *Cls : {"wep", "icc"}) {
    vm::VMProgram P = mustBuild(corpus::sizeClassSource(Cls));
    row(Cls, P, PageSize);
  }
  hr();
  std::printf("\npaper: interpretation cuts the working set by over "
              "40%%\n");
  return 0;
}

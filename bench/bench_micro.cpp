//===- bench/bench_micro.cpp - Component microbenchmarks -----------------------===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//
//
// google-benchmark throughput measurements for the building blocks:
// flate compress/decompress, Huffman and MTF coding, the three
// execution engines' dispatch rates, BRISC compression, and the JIT's
// code-production rate (the 2.5 MB/s headline, on modern hardware).
//
//===----------------------------------------------------------------------===//

#include "benchmark/benchmark.h"

#include "brisc/Brisc.h"
#include "brisc/Interp.h"
#include "corpus/Corpus.h"
#include "flate/Flate.h"
#include "minic/Compile.h"
#include "codegen/Codegen.h"
#include "native/Threaded.h"
#include "support/Huffman.h"
#include "support/MTF.h"
#include "support/PRNG.h"
#include "vm/Encode.h"
#include "wire/Wire.h"

using namespace ccomp;

namespace {

std::vector<uint8_t> codeLikeBytes(size_t N) {
  PRNG Rng(7);
  std::vector<uint8_t> Out;
  Out.reserve(N);
  while (Out.size() < N) {
    Out.push_back(static_cast<uint8_t>(Rng.below(40)));
    Out.push_back(static_cast<uint8_t>(Rng.below(256)));
    Out.push_back(static_cast<uint8_t>(4 * Rng.below(32)));
    Out.push_back(0);
  }
  return Out;
}

vm::VMProgram &wepProgram() {
  static vm::VMProgram P = [] {
    minic::CompileResult CR =
        minic::compile(corpus::sizeClassSource("wep"));
    codegen::Result CG = codegen::generate(*CR.M);
    return std::move(CG.P);
  }();
  return P;
}

const corpus::Program &benchProgram() { return *corpus::find("qsort"); }

} // namespace

static void BM_FlateCompress(benchmark::State &State) {
  std::vector<uint8_t> In = codeLikeBytes(1 << 18);
  for (auto _ : State)
    benchmark::DoNotOptimize(flate::compress(In));
  State.SetBytesProcessed(int64_t(State.iterations()) * In.size());
}
BENCHMARK(BM_FlateCompress);

static void BM_FlateDecompress(benchmark::State &State) {
  std::vector<uint8_t> In = codeLikeBytes(1 << 18);
  std::vector<uint8_t> Z = flate::compress(In);
  for (auto _ : State)
    benchmark::DoNotOptimize(flate::decompress(Z));
  State.SetBytesProcessed(int64_t(State.iterations()) * In.size());
}
BENCHMARK(BM_FlateDecompress);

static void BM_HuffmanRoundTrip(benchmark::State &State) {
  PRNG Rng(3);
  std::vector<uint64_t> Freq(256, 0);
  std::vector<unsigned> Syms;
  for (int I = 0; I != 65536; ++I) {
    unsigned S = static_cast<unsigned>(Rng.below(256));
    S = S * S / 256;
    Syms.push_back(S);
    ++Freq[S];
  }
  for (auto _ : State) {
    HuffmanCode Code(buildHuffmanLengths(Freq));
    BitWriter W;
    for (unsigned S : Syms)
      Code.encode(W, S);
    std::vector<uint8_t> B = W.finish();
    benchmark::DoNotOptimize(B);
    BitReader R(B);
    unsigned Sum = 0;
    for (size_t I = 0; I != Syms.size(); ++I)
      Sum += Code.decode(R);
    benchmark::DoNotOptimize(Sum);
  }
  State.SetItemsProcessed(int64_t(State.iterations()) * Syms.size());
}
BENCHMARK(BM_HuffmanRoundTrip);

static void BM_MTFEncode(benchmark::State &State) {
  PRNG Rng(9);
  std::vector<uint64_t> Vals;
  for (int I = 0; I != 65536; ++I)
    Vals.push_back(Rng.below(64));
  for (auto _ : State) {
    MTFEncoder Enc;
    uint64_t Sum = 0;
    for (uint64_t V : Vals)
      Sum += Enc.encode(V).Index;
    benchmark::DoNotOptimize(Sum);
  }
  State.SetItemsProcessed(int64_t(State.iterations()) * Vals.size());
}
BENCHMARK(BM_MTFEncode);

static void BM_MinicCompile(benchmark::State &State) {
  std::string Src = corpus::sizeClassSource("wep");
  for (auto _ : State) {
    minic::CompileResult R = minic::compile(Src);
    benchmark::DoNotOptimize(R.M);
  }
  State.SetBytesProcessed(int64_t(State.iterations()) * Src.size());
}
BENCHMARK(BM_MinicCompile);

static void BM_WireCompress(benchmark::State &State) {
  minic::CompileResult CR = minic::compile(corpus::sizeClassSource("wep"));
  for (auto _ : State)
    benchmark::DoNotOptimize(wire::compress(*CR.M));
}
BENCHMARK(BM_WireCompress);

static void BM_BriscCompress(benchmark::State &State) {
  vm::VMProgram &P = wepProgram();
  for (auto _ : State) {
    brisc::BriscProgram B = brisc::compress(P);
    benchmark::DoNotOptimize(B.Funcs.size());
  }
  State.SetBytesProcessed(int64_t(State.iterations()) *
                          vm::encodeProgram(P).size());
}
BENCHMARK(BM_BriscCompress);

static void BM_JitRate(benchmark::State &State) {
  // The paper's headline: BRISC -> native code at 2.5 MB/s on a 120MHz
  // Pentium. Bytes here are produced threaded code.
  vm::VMProgram &P = wepProgram();
  brisc::BriscProgram B = brisc::compress(P);
  size_t Out = native::generateFromBrisc(B).codeBytes();
  for (auto _ : State) {
    native::NProgram N = native::generateFromBrisc(B);
    benchmark::DoNotOptimize(N.Code.data());
  }
  State.SetBytesProcessed(int64_t(State.iterations()) * Out);
}
BENCHMARK(BM_JitRate);

static void BM_RunVMInterp(benchmark::State &State) {
  minic::CompileResult CR = minic::compile(benchProgram().Source);
  codegen::Result CG = codegen::generate(*CR.M);
  uint64_t Steps = 0;
  for (auto _ : State) {
    vm::RunResult R = vm::runProgram(CG.P);
    Steps = R.Steps;
    benchmark::DoNotOptimize(R.ExitCode);
  }
  State.SetItemsProcessed(int64_t(State.iterations()) * Steps);
}
BENCHMARK(BM_RunVMInterp);

static void BM_RunBriscInterp(benchmark::State &State) {
  minic::CompileResult CR = minic::compile(benchProgram().Source);
  codegen::Result CG = codegen::generate(*CR.M);
  brisc::BriscProgram B = brisc::compress(CG.P);
  uint64_t Steps = 0;
  for (auto _ : State) {
    vm::RunResult R = brisc::interpret(B);
    Steps = R.Steps;
    benchmark::DoNotOptimize(R.ExitCode);
  }
  State.SetItemsProcessed(int64_t(State.iterations()) * Steps);
}
BENCHMARK(BM_RunBriscInterp);

static void BM_RunThreaded(benchmark::State &State) {
  minic::CompileResult CR = minic::compile(benchProgram().Source);
  codegen::Result CG = codegen::generate(*CR.M);
  native::NProgram N = native::generate(CG.P);
  uint64_t Steps = 0;
  for (auto _ : State) {
    vm::RunResult R = native::run(N);
    Steps = R.Steps;
    benchmark::DoNotOptimize(R.ExitCode);
  }
  State.SetItemsProcessed(int64_t(State.iterations()) * Steps);
}
BENCHMARK(BM_RunThreaded);

BENCHMARK_MAIN();

//===- bench/bench_remote_paging.cpp - Remote demand paging (section 1/4) ------===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//
//
// The mobile-code delivery scenario at per-function granularity: instead
// of downloading a whole module before the first instruction runs
// (bench_delivery), the client opens a store session over the link and
// faults compressed function frames in on demand. Transfer time is
// virtual (sim::Link through a SimulatedRemoteFrameSource), decode time
// is measured, and the two are reported separately: total time is
// sim::remoteTotalTime(cpu, decode, fetch).
//
// Acts:
//   1. link x form grid — whole-module wire delivery vs demand-paged
//      stores (brisc, vm-compact+flate) over every link preset. Demand
//      paging starts useful work after fetching only the functions the
//      run touches; the wire form must download everything first but
//      then pays no per-fault latency.
//   2. flaky-link sweep — the same store over a modem that corrupts,
//      truncates, or times out a growing fraction of fetch attempts.
//      Retries mask every transient (the run stays byte-identical); the
//      bill shows up purely as virtual transfer time and retry counts.
//
// Each configuration emits one machine-readable CCOMP-STATS JSON line.
//
//===----------------------------------------------------------------------===//

#include "../bench/BenchUtil.h"

#include "brisc/Brisc.h"
#include "native/Threaded.h"
#include "sim/Paging.h"
#include "sim/Transport.h"
#include "store/CodeStore.h"
#include "store/FrameSource.h"
#include "store/Resolver.h"
#include "wire/Wire.h"

using namespace ccomp;
using namespace ccomp::bench;

namespace {

const sim::Link Links[] = {sim::modem28k(), sim::isdn128k(),
                           sim::ethernet10M(), sim::fast100M()};

struct StoreForm {
  const char *Chain;
  std::vector<uint8_t> Image;
};

void statsLine(const char *Link, const char *Form, size_t Bytes,
               double FetchS, double DecodeS, double CpuS, double TotalS,
               const store::StoreStats *St, double FailRate) {
  // Link and form names are free-form text: escape them, and validate
  // the assembled line so the emitted format stays parseable.
  char Buf[768];
  int N = std::snprintf(
      Buf, sizeof(Buf),
      "{\"bench\":\"remote_paging\",\"link\":\"%s\","
      "\"form\":\"%s\",\"compressed_bytes\":%zu,\"fail_rate\":%.2f,"
      "\"fetch_virtual_s\":%.4f,\"decode_s\":%.4f,\"cpu_s\":%.4f,"
      "\"total_s\":%.4f",
      jsonEscape(Link).c_str(), jsonEscape(Form).c_str(), Bytes, FailRate,
      FetchS, DecodeS, CpuS, TotalS);
  if (St)
    N += std::snprintf(
        Buf + N, sizeof(Buf) - N,
        ",\"misses\":%llu,\"hit_rate\":%.4f,\"fetched_bytes\":%llu,"
        "\"fetch_attempts\":%llu,\"fetch_retries\":%llu,"
        "\"fetch_failures\":%llu",
        (unsigned long long)St->Misses, St->hitRate(),
        (unsigned long long)St->FetchedBytes,
        (unsigned long long)St->FetchAttempts,
        (unsigned long long)St->FetchRetries,
        (unsigned long long)St->FetchFailures);
  std::snprintf(Buf + N, sizeof(Buf) - N, "}");
  emitStats(Buf);
}

} // namespace

int main() {
  std::string Src = corpus::sizeClassSource("icc");
  std::unique_ptr<ir::Module> M = mustCompile(Src);
  vm::VMProgram P = mustBuild(Src);
  vm::RunResult Eager = vm::runProgram(P);
  if (!Eager.Ok)
    reportFatal("eager run failed: " + Eager.Trap);

  // Whole-module wire delivery: download everything, then decompress +
  // recompile to runnable native code (measured client cost).
  std::vector<uint8_t> Wire = wire::compress(*M);
  double WireClientSec = timeIt([&] {
    std::string Err;
    std::unique_ptr<ir::Module> M2 = wire::decompress(Wire, Err);
    if (!M2)
      reportFatal("wire decompress failed: " + Err);
    codegen::Result CG = codegen::generate(*M2);
    if (!CG.ok())
      reportFatal("wire recompile failed");
    native::generate(CG.P);
  });

  // Demand-paged store forms.
  StoreForm Forms[] = {{"brisc", {}}, {"vm-compact+flate", {}}};
  size_t DecodedBytes = 0;
  for (const vm::VMFunction &F : P.Functions)
    DecodedBytes += store::decodedCostBytes(F);
  for (StoreForm &F : Forms) {
    std::string Err;
    std::unique_ptr<store::CodeStore> S =
        store::CodeStore::build(P, F.Chain, store::StoreOptions(), Err);
    if (!S)
      reportFatal(std::string("store build failed: ") + Err);
    F.Image = S->save();
  }
  // Enough budget for the working set, far below the whole program.
  const size_t Budget = DecodedBytes / 4;

  auto RunStore = [&](const StoreForm &F, const sim::Link &L,
                      double FailRate, uint64_t Seed, bool Emit) {
    store::RemoteOptions RO;
    RO.Link = L;
    RO.Latency = store::LatencyMode::Batched; // One session per run.
    RO.TransientFailureRate = FailRate;
    RO.FaultSeed = Seed;
    store::StoreOptions SO;
    SO.CacheBudgetBytes = Budget;
    SO.Retry.MaxAttempts = 16;
    Result<std::unique_ptr<store::LocalFrameSource>> Origin =
        store::LocalFrameSource::fromContainerBytes(F.Image);
    if (!Origin.ok())
      reportFatal("store image unreadable: " + Origin.error().message());
    Result<std::unique_ptr<store::CodeStore>> LS = store::CodeStore::tryFromSource(
        std::make_unique<store::SimulatedRemoteFrameSource>(Origin.take(), RO),
        SO);
    if (!LS.ok())
      reportFatal("remote store open failed: " + LS.error().message());
    std::unique_ptr<store::CodeStore> S = LS.take();

    vm::RunResult R;
    double Cpu = timeIt([&] { R = store::runFromStore(*S); });
    if (!R.Ok || R.Output != Eager.Output || R.ExitCode != Eager.ExitCode)
      reportFatal("remote store run diverged: " + R.Trap);
    store::StoreStats St = S->stats();
    double FetchS = double(St.FetchVirtualNanos) / 1e9;
    double DecodeS = double(St.DecodeNanos) / 1e9;
    sim::TotalTime T =
        sim::remoteTotalTime(Cpu - DecodeS, St.DecodeNanos,
                             St.FetchVirtualNanos);
    if (Emit) {
      std::printf("  %-18s %10zu %12.3f %12.4f %12.3f\n", F.Chain,
                  F.Image.size(), FetchS, DecodeS, T.total());
      statsLine(L.Name, F.Chain, F.Image.size(), FetchS, DecodeS, Cpu,
                T.total(), &St, FailRate);
    }
    return St;
  };

  std::printf("Remote demand paging vs whole-module delivery "
              "(icc size class, budget %zu B)\n", Budget);
  std::printf("(store fetch time is virtual link time: transfer + retry "
              "backoff; decode is measured)\n\n");
  for (const sim::Link &L : Links) {
    std::printf("link: %s\n", L.Name);
    std::printf("  %-18s %10s %12s %12s %12s\n", "form", "bytes",
                "fetch s", "decode s", "total s");
    double WireFetch = L.transferSeconds(Wire.size());
    std::printf("  %-18s %10zu %12.3f %12.4f %12.3f\n", "wire",
                Wire.size(), WireFetch, WireClientSec,
                WireFetch + WireClientSec);
    statsLine(L.Name, "wire", Wire.size(), WireFetch, WireClientSec, 0.0,
              WireFetch + WireClientSec, nullptr, 0.0);
    for (const StoreForm &F : Forms)
      RunStore(F, L, 0.0, 0xBE9C, /*Emit=*/true);
    std::printf("\n");
  }
  std::printf("expected shape: the wire module is far denser than "
              "per-function frames, so\nwhole-module delivery wins this "
              "run (it touches most of the program and the\ntight budget "
              "forces refetches); the store's edge is elsewhere — it "
              "never\ndownloads untouched functions, starts running "
              "after one frame, and keeps\nfetch time (virtual) "
              "separated from decode time (measured) per row\n\n");

  // Act 2: the same store over an increasingly unreliable modem.
  const StoreForm &Flaky = Forms[1]; // vm-compact+flate
  std::printf("Flaky 28.8k modem, %s store: retries mask transients, "
              "the bill is virtual time\n", Flaky.Chain);
  std::printf("  %-10s %12s %12s %12s %12s\n", "fail rate", "attempts",
              "retries", "fetch s", "failures");
  for (double Rate : {0.0, 0.05, 0.10, 0.30}) {
    store::StoreStats St =
        RunStore(Flaky, sim::modem28k(), Rate, 0xF1A6, /*Emit=*/false);
    std::printf("  %9.0f%% %12llu %12llu %12.3f %12llu\n", Rate * 100,
                (unsigned long long)St.FetchAttempts,
                (unsigned long long)St.FetchRetries,
                double(St.FetchVirtualNanos) / 1e9,
                (unsigned long long)St.FetchFailures);
    statsLine("28.8k modem", Flaky.Chain, Flaky.Image.size(),
              double(St.FetchVirtualNanos) / 1e9,
              double(St.DecodeNanos) / 1e9, 0.0,
              double(St.FetchVirtualNanos + St.DecodeNanos) / 1e9, &St,
              Rate);
  }
  std::printf("\nexpected shape: every run is byte-identical to eager "
              "execution; rising fault\nrates only raise attempts and "
              "virtual seconds, never failures\n");
  return 0;
}

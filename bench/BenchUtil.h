//===- bench/BenchUtil.h - Shared experiment-harness helpers ----*- C++ -*-===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The experiment harness's view of the shared corpus/build/timing
/// helpers (harness/CorpusUtil.h). Kept as an alias namespace so bench
/// sources keep reading `bench::suiteProgram()` etc.
///
//===----------------------------------------------------------------------===//

#ifndef CCOMP_BENCH_BENCHUTIL_H
#define CCOMP_BENCH_BENCHUTIL_H

#include "CorpusUtil.h"

namespace ccomp {
namespace bench {

using harness::hr;
using harness::mustBuild;
using harness::mustCompile;
using harness::suiteModule;
using harness::suiteProgram;
using harness::syntheticSource;
using harness::timeIt;
using harness::timeStable;

} // namespace bench
} // namespace ccomp

#endif // CCOMP_BENCH_BENCHUTIL_H

//===- bench/BenchUtil.h - Shared experiment-harness helpers ----*- C++ -*-===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//

#ifndef CCOMP_BENCH_BENCHUTIL_H
#define CCOMP_BENCH_BENCHUTIL_H

#include "codegen/Codegen.h"
#include "corpus/Corpus.h"
#include "ir/Link.h"
#include "minic/Compile.h"
#include "support/Support.h"
#include "vm/Machine.h"

#include <chrono>
#include <cstdio>
#include <string>

namespace ccomp {
namespace bench {

/// Compiles C source to a linked VM program; aborts on error (benchmark
/// inputs are all under our control).
inline vm::VMProgram mustBuild(const std::string &Src,
                               codegen::Options Opts = codegen::Options()) {
  minic::CompileResult CR = minic::compile(Src);
  if (!CR.ok())
    reportFatal("bench: compile failed: " + CR.Error);
  codegen::Result CG = codegen::generate(*CR.M, Opts);
  if (!CG.ok())
    reportFatal("bench: codegen failed: " + CG.Error);
  return std::move(CG.P);
}

inline std::unique_ptr<ir::Module> mustCompile(const std::string &Src) {
  minic::CompileResult CR = minic::compile(Src);
  if (!CR.ok())
    reportFatal("bench: compile failed: " + CR.Error);
  return std::move(CR.M);
}

/// Links every hand-written corpus program into one suite module (the
/// realistic mid-size input: real algorithms, no synthetic repetition).
inline std::unique_ptr<ir::Module> suiteModule() {
  std::vector<std::unique_ptr<ir::Module>> Units;
  for (const corpus::Program &P : corpus::programs()) {
    minic::CompileResult CR = minic::compile(P.Source);
    if (!CR.ok())
      reportFatal(std::string("suite: ") + P.Name + ": " + CR.Error);
    Units.push_back(std::move(CR.M));
  }
  return ir::linkModules(std::move(Units));
}

inline vm::VMProgram suiteProgram() {
  std::unique_ptr<ir::Module> M = suiteModule();
  codegen::Result CG = codegen::generate(*M);
  if (!CG.ok())
    reportFatal("suite codegen failed: " + CG.Error);
  return std::move(CG.P);
}

/// Wall-clock seconds of a callable.
template <class Fn> double timeIt(Fn &&F) {
  auto T0 = std::chrono::steady_clock::now();
  F();
  auto T1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(T1 - T0).count();
}

/// Wall-clock seconds, repeating the callable until ~MinSeconds elapsed
/// and dividing (for very fast bodies).
template <class Fn> double timeStable(Fn &&F, double MinSeconds = 0.2) {
  unsigned Reps = 1;
  for (;;) {
    auto T0 = std::chrono::steady_clock::now();
    for (unsigned I = 0; I != Reps; ++I)
      F();
    auto T1 = std::chrono::steady_clock::now();
    double S = std::chrono::duration<double>(T1 - T0).count();
    if (S >= MinSeconds || Reps >= 1u << 20)
      return S / Reps;
    Reps *= 2;
  }
}

inline void hr() {
  std::printf("-------------------------------------------------------------"
              "-----------------\n");
}

} // namespace bench
} // namespace ccomp

#endif // CCOMP_BENCH_BENCHUTIL_H

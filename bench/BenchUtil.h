//===- bench/BenchUtil.h - Shared experiment-harness helpers ----*- C++ -*-===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The experiment harness's view of the shared corpus/build/timing
/// helpers (harness/CorpusUtil.h). Kept as an alias namespace so bench
/// sources keep reading `bench::suiteProgram()` etc.
///
//===----------------------------------------------------------------------===//

#ifndef CCOMP_BENCH_BENCHUTIL_H
#define CCOMP_BENCH_BENCHUTIL_H

#include "CorpusUtil.h"

#include "support/Support.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace ccomp {
namespace bench {

using harness::hr;
using harness::mustBuild;
using harness::mustCompile;
using harness::suiteModule;
using harness::suiteProgram;
using harness::syntheticSource;
using harness::timeIt;
using harness::timeStable;

/// Escapes \p S for splicing into a JSON string literal (quotes,
/// backslashes, and control bytes). Codec-chain specs and link labels
/// are free-form text; emitting them raw would break any consumer the
/// moment a chain name grows a quote.
inline std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char Raw : S) {
    unsigned char C = static_cast<unsigned char>(Raw);
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\b':
      Out += "\\b";
      break;
    case '\f':
      Out += "\\f";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (C < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += Raw;
      }
    }
  }
  return Out;
}

namespace detail {

/// A minimal recursive-descent JSON checker: enough to lock the
/// CCOMP-STATS wire format without pulling in a JSON library. Aborts on
/// the first malformed byte.
struct MiniJsonChecker {
  const std::string &S;
  size_t I = 0;

  explicit MiniJsonChecker(const std::string &Str) : S(Str) {}

  [[noreturn]] void fail(const char *Why) const {
    reportFatal(std::string("malformed CCOMP-STATS JSON (") + Why +
                ") at byte " + std::to_string(I) + ": " + S);
  }
  void ws() {
    while (I < S.size() && (S[I] == ' ' || S[I] == '\t'))
      ++I;
  }
  void expect(char C, const char *Why) {
    if (I >= S.size() || S[I] != C)
      fail(Why);
    ++I;
  }
  void string() {
    expect('"', "expected string");
    while (I < S.size() && S[I] != '"') {
      unsigned char C = static_cast<unsigned char>(S[I]);
      if (C < 0x20)
        fail("unescaped control character");
      if (C == '\\') {
        ++I;
        if (I >= S.size())
          fail("truncated escape");
        char E = S[I];
        if (E == 'u') {
          for (int K = 0; K != 4; ++K) {
            ++I;
            if (I >= S.size() ||
                !std::isxdigit(static_cast<unsigned char>(S[I])))
              fail("bad \\u escape");
          }
        } else if (E != '"' && E != '\\' && E != '/' && E != 'b' &&
                   E != 'f' && E != 'n' && E != 'r' && E != 't') {
          fail("bad escape");
        }
      }
      ++I;
    }
    expect('"', "unterminated string");
  }
  void number() {
    size_t Start = I;
    if (I < S.size() && S[I] == '-')
      ++I;
    while (I < S.size() &&
           (std::isdigit(static_cast<unsigned char>(S[I])) || S[I] == '.' ||
            S[I] == 'e' || S[I] == 'E' || S[I] == '+' || S[I] == '-'))
      ++I;
    if (I == Start)
      fail("expected value");
    std::string Num = S.substr(Start, I - Start);
    char *End = nullptr;
    (void)std::strtod(Num.c_str(), &End);
    if (End != Num.c_str() + Num.size())
      fail("bad number");
  }
  void value() {
    ws();
    if (I >= S.size())
      fail("expected value");
    char C = S[I];
    if (C == '"')
      string();
    else if (C == '{')
      object();
    else if (C == '[')
      array();
    else if (S.compare(I, 4, "true") == 0)
      I += 4;
    else if (S.compare(I, 5, "false") == 0)
      I += 5;
    else if (S.compare(I, 4, "null") == 0)
      I += 4;
    else
      number();
  }
  void array() {
    expect('[', "expected array");
    ws();
    if (I < S.size() && S[I] == ']') {
      ++I;
      return;
    }
    for (;;) {
      value();
      ws();
      if (I < S.size() && S[I] == ',') {
        ++I;
        continue;
      }
      expect(']', "unterminated array");
      return;
    }
  }
  void object() {
    expect('{', "expected object");
    ws();
    if (I < S.size() && S[I] == '}') {
      ++I;
      return;
    }
    for (;;) {
      ws();
      string();
      ws();
      expect(':', "expected ':'");
      value();
      ws();
      if (I < S.size() && S[I] == ',') {
        ++I;
        continue;
      }
      expect('}', "unterminated object");
      return;
    }
  }
};

} // namespace detail

/// Verifies one machine-readable stats line: the literal "CCOMP-STATS "
/// prefix followed by a single well-formed JSON object and nothing else.
/// Aborts on any violation — every stats line the harness emits goes
/// through this, so a malformed emitter fails the bench run instead of
/// silently corrupting downstream parsing.
inline void checkStatsLine(const std::string &Line) {
  const char Prefix[] = "CCOMP-STATS ";
  const size_t PrefixLen = sizeof(Prefix) - 1;
  if (Line.compare(0, PrefixLen, Prefix) != 0)
    reportFatal("CCOMP-STATS line missing its prefix: " + Line);
  detail::MiniJsonChecker P(Line);
  P.I = PrefixLen;
  P.ws();
  P.object();
  P.ws();
  if (P.I != Line.size())
    P.fail("trailing bytes after the object");
}

/// Validates \p JsonObject and prints the stats line (with newline).
inline void emitStats(const std::string &JsonObject) {
  std::string Line = std::string("CCOMP-STATS ") + JsonObject;
  checkStatsLine(Line);
  std::printf("%s\n", Line.c_str());
}

} // namespace bench
} // namespace ccomp

#endif // CCOMP_BENCH_BENCHUTIL_H

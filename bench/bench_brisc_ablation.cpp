//===- bench/bench_brisc_ablation.cpp - BRISC mechanism ablation ---------------===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//
//
// Separates the contributions of BRISC's two mechanisms (operand
// specialization and opcode combination, section 4) plus the epilogue
// macro-instruction and the abundant-memory benefit metric (B = P
// instead of B = P - W).
//
//===----------------------------------------------------------------------===//

#include "../bench/BenchUtil.h"

#include "brisc/Brisc.h"
#include "vm/Encode.h"

using namespace ccomp;
using namespace ccomp::bench;

int main() {
  vm::VMProgram P = mustBuild(corpus::sizeClassSource("icc"));
  size_t Native = vm::encodeProgramCompact(P).size();

  struct Mode {
    const char *Name;
    brisc::CompressOptions Opts;
  };
  Mode Modes[6];
  Modes[0] = {"neither (base opcodes only)", {}};
  Modes[0].Opts.EnableSpecialization = false;
  Modes[0].Opts.EnableCombination = false;
  Modes[0].Opts.EnableEpi = false;
  Modes[1] = {"specialization only", {}};
  Modes[1].Opts.EnableCombination = false;
  Modes[1].Opts.EnableEpi = false;
  Modes[2] = {"combination only", {}};
  Modes[2].Opts.EnableSpecialization = false;
  Modes[2].Opts.EnableEpi = false;
  Modes[3] = {"both", {}};
  Modes[3].Opts.EnableEpi = false;
  Modes[4] = {"both + epi", {}};
  Modes[5] = {"both + epi, abundant memory", {}};
  Modes[5].Opts.AbundantMemory = true;

  std::printf("BRISC mechanism ablation (icc class; native = compact "
              "encoding, %zu bytes)\n\n", Native);
  std::printf("%-32s %10s %10s %10s\n", "mode", "bytes", "vs native",
              "patterns");
  hr();
  for (const Mode &M : Modes) {
    brisc::CompressStats S;
    brisc::compress(P, M.Opts, &S);
    std::printf("%-32s %10zu %10.2f %10zu\n", M.Name, S.TotalBytes,
                double(S.TotalBytes) / double(Native), S.DictPatterns);
  }
  hr();
  std::printf("\nexpected shape: each mechanism helps; together they "
              "approach the paper's ~0.5x;\nabundant memory adopts more "
              "patterns for a small extra gain or parity\n");
  return 0;
}

//===- bench/bench_brisc_table2.cpp - Section 4's BRISC results table ----------===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//
//
// Reproduces the BRISC results table of section 4: per benchmark
// program, executable size relative to native code (normalized to 1.0),
// the same for gzipped native code, the just-in-time native code
// generation rate, the runtime relative to native including JIT time,
// and the runtime when interpreted in place.
//
// The native baseline is the compact variable-length encoding (the
// Pentium stand-in; the paper normalizes to Visual C++ 5.0 output).
// Expected shape: BRISC lands in gzip's size neighborhood while staying
// interpretable; JIT production rate is tens of MB/s or more on modern
// hardware (the paper's 2.5 MB/s was a 120MHz Pentium); JIT runtime is
// within a few percent of native; interpretation costs roughly an order
// of magnitude.
//
//===----------------------------------------------------------------------===//

#include "../bench/BenchUtil.h"

#include "brisc/Brisc.h"
#include "brisc/Interp.h"
#include "flate/Flate.h"
#include "native/Threaded.h"
#include "vm/Encode.h"

using namespace ccomp;
using namespace ccomp::bench;

namespace {

void row(const std::string &Name, const vm::VMProgram &P,
         bool RunColumns = true) {
  size_t Native = vm::encodeProgramCompact(P).size();
  size_t Gz = flate::compress(vm::encodeProgramCompact(P)).size();

  brisc::CompressStats CS;
  brisc::BriscProgram B = brisc::compress(P, brisc::CompressOptions(), &CS);
  size_t Brisc = CS.TotalBytes;

  // JIT rate: BRISC -> threaded code, bytes of produced code per second.
  native::NProgram N = native::generateFromBrisc(B);
  double GenSec = timeStable(
      [&] { native::NProgram Tmp = native::generateFromBrisc(B); },
      0.05);
  double RateMBs = double(N.codeBytes()) / GenSec / 1e6;

  if (!RunColumns) {
    // Synthetic size classes have negligible intrinsic runtime; their
    // run ratios would only measure code-generation time.
    std::printf("%-8s %9.2f %9.2f %10.1f %10s %10s\n", Name.c_str(),
                double(Brisc) / double(Native),
                double(Gz) / double(Native), RateMBs, "-", "-");
    return;
  }

  // Runtimes.
  double NativeSec = timeStable([&] { native::run(N); }, 0.05);
  double JitSec = GenSec + NativeSec;
  double InterpSec = timeStable([&] { brisc::interpret(B); }, 0.05);

  std::printf("%-8s %9.2f %9.2f %10.1f %10.2f %10.1f\n", Name.c_str(),
              double(Brisc) / double(Native), double(Gz) / double(Native),
              RateMBs, JitSec / NativeSec, InterpSec / NativeSec);
}

} // namespace

int main() {
  std::printf("Table 2 (section 4): BRISC executable sizes and speeds\n");
  std::printf("(sizes relative to the compact/CISC native encoding = "
              "1.00)\n\n");
  std::printf("%-8s %9s %9s %10s %10s %10s\n", "program", "BRISC",
              "gzip", "JIT MB/s", "JIT run", "interp");
  hr();
  for (const corpus::Program &CP : corpus::programs()) {
    vm::VMProgram P = mustBuild(CP.Source);
    row(CP.Name, P);
  }
  hr();
  // Suite = every hand-written program linked into one executable (the
  // realistic size row: dictionary overhead amortized), plus the
  // synthetic size classes.
  {
    vm::VMProgram P = suiteProgram();
    row("suite", P);
  }
  for (const char *Cls : {"wep", "icc"}) {
    vm::VMProgram P = mustBuild(corpus::sizeClassSource(Cls));
    row(Cls, P, /*RunColumns=*/false);
  }
  hr();
  std::printf("note: per-program size columns above the break are "
              "dictionary-dominated\n(toy-sized inputs); the suite and "
              "class rows carry the size result.\n");
  std::printf("paper (120MHz Pentium): BRISC ~= gzip size; JIT 2.5 MB/s; "
              "JIT run ~1.08x; interpretation ~12x\n");
  return 0;
}

//===- bench/bench_delivery.cpp - Code delivery scenarios (section 1/4) --------===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//
//
// Reproduces the delivery conclusion of section 4: "in a local area
// network, BRISC is a good mobile program representation choice. Over a
// modem, the tree compression algorithm [the wire format] will do
// better at minimizing the latency between when a program is requested
// and when the program begins performing useful work."
//
// For each representation we model: transfer time over the link plus the
// measured client-side cost to reach runnable native code (wire:
// decompress + compile + codegen + JIT; BRISC: JIT only; native: none).
//
//===----------------------------------------------------------------------===//

#include "../bench/BenchUtil.h"

#include "brisc/Brisc.h"
#include "flate/Flate.h"
#include "native/Threaded.h"
#include "sim/Transport.h"
#include "vm/Encode.h"
#include "wire/Wire.h"

using namespace ccomp;
using namespace ccomp::bench;

int main() {
  std::string Src = corpus::sizeClassSource("icc");
  std::unique_ptr<ir::Module> M = mustCompile(Src);
  vm::VMProgram P = mustBuild(Src);

  // Representation sizes.
  std::vector<uint8_t> Native = vm::encodeProgramCompact(P);
  std::vector<uint8_t> GzNative = flate::compress(Native);
  std::vector<uint8_t> Wire = wire::compress(*M);
  brisc::BriscProgram B = brisc::compress(P);
  std::vector<uint8_t> BriscImg = B.serialize(/*IncludeData=*/false);

  // Client-side costs (measured).
  double GunzipSec = timeStable([&] { flate::decompress(GzNative); }, 0.05);
  double JitSec =
      timeStable([&] { native::generateFromBrisc(B); }, 0.05);
  double WireClientSec = timeIt([&] {
    std::string Err;
    std::unique_ptr<ir::Module> M2 = wire::decompress(Wire, Err);
    if (!M2)
      reportFatal("wire decompress failed: " + Err);
    codegen::Result CG = codegen::generate(*M2);
    if (!CG.ok())
      reportFatal("wire recompile failed");
    native::generate(CG.P);
  });

  struct Rep {
    const char *Name;
    size_t Bytes;
    double ClientSec;
  };
  const Rep Reps[] = {
      {"native", Native.size(), 0.0},
      {"gzip native", GzNative.size(), GunzipSec},
      {"wire", Wire.size(), WireClientSec},
      {"BRISC", BriscImg.size(), JitSec},
  };

  auto Report = [&](double CpuScale, const char *ClientDesc) {
    std::printf("client CPU: %s\n\n", ClientDesc);
    for (const sim::Link &L : {sim::modem28k(), sim::isdn128k(),
                               sim::ethernet10M(), sim::fast100M()}) {
      std::printf("link: %s\n", L.Name);
      std::printf("  %-12s %10s %12s %12s %12s\n", "form", "bytes",
                  "transfer s", "client s", "total s");
      const Rep *Best = nullptr;
      double BestT = 0;
      for (const Rep &R : Reps) {
        sim::Delivery D = sim::deliver(L, R.Bytes, R.ClientSec * CpuScale);
        std::printf("  %-12s %10zu %12.3f %12.3f %12.3f\n", R.Name,
                    R.Bytes, D.TransferSeconds, D.ClientSeconds,
                    D.total());
        if (!Best || D.total() < BestT) {
          Best = &R;
          BestT = D.total();
        }
      }
      std::printf("  -> best: %s\n\n", Best->Name);
    }
  };

  std::printf("Delivery-to-first-instruction (icc size class)\n");
  std::printf("(client cost: wire = decompress+compile+codegen, BRISC = "
              "JIT, gzip = inflate)\n\n");
  Report(1.0, "this machine (measured)");
  // The paper's crossover assumed a 120MHz Pentium client; scale the
  // measured client costs to period hardware to reproduce it.
  Report(250.0, "period 120MHz-class client (measured x250)");
  std::printf("expected shape: wire wins on the modem; BRISC wins on the "
              "LAN once client\nCPU is the period bottleneck (the "
              "paper's conclusion)\n");
  return 0;
}

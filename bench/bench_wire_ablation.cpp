//===- bench/bench_wire_ablation.cpp - Wire pipeline ablation (section 2/3) ----===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//
//
// Quantifies each stage of the wire pipeline against the design-space
// questions of section 2: how much do stream separation, move-to-front
// coding, and Huffman coding of the MTF indices each contribute beyond
// "just gzip the serialized trees"?
//
//===----------------------------------------------------------------------===//

#include "../bench/BenchUtil.h"

#include "flate/Flate.h"
#include "vm/Encode.h"
#include "wire/Wire.h"

using namespace ccomp;
using namespace ccomp::bench;

int main() {
  std::printf("Wire pipeline ablation (bytes)\n\n");
  std::printf("%-6s %10s %10s %10s %10s %10s\n", "input", "native",
              "naive", "+streams", "+MTF", "+Huffman");
  hr();
  for (const char *Cls : {"wep", "icc", "gcc"}) {
    std::string Src = corpus::sizeClassSource(Cls);
    std::unique_ptr<ir::Module> M = mustCompile(Src);
    vm::VMProgram P = mustBuild(Src);
    size_t Native = vm::encodeProgram(P).size();
    size_t L0 = wire::compress(*M, wire::Pipeline::Naive).size();
    size_t L1 = wire::compress(*M, wire::Pipeline::Streams).size();
    size_t L2 = wire::compress(*M, wire::Pipeline::StreamsMTF).size();
    size_t L3 = wire::compress(*M, wire::Pipeline::Full).size();
    std::printf("%-6s %10zu %10zu %10zu %10zu %10zu\n", Cls, Native, L0,
                L1, L2, L3);
  }
  hr();
  std::printf("\nPer-stream breakdown (icc class, full pipeline):\n");
  std::unique_ptr<ir::Module> M =
      mustCompile(corpus::sizeClassSource("icc"));
  wire::Stats S;
  wire::compress(*M, wire::Pipeline::Full, &S);
  std::printf("%-12s %10s %12s\n", "stream", "raw B", "compressed B");
  hr();
  for (const wire::StreamStat &St : S.Streams)
    std::printf("%-12s %10zu %12zu\n", St.Name.c_str(), St.RawBytes,
                St.CompressedBytes);
  hr();
  std::printf("patterns: %zu distinct tree shapes over %zu statement "
              "trees\n", S.PatternCount, S.TreeCount);
  return 0;
}

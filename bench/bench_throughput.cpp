//===- bench/bench_throughput.cpp - Codec throughput vs. thread count ----------===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//
//
// Compression throughput of every registered codec when per-function
// jobs fan out across the pipeline's thread pool: MB/s at 1, 2, and 4
// jobs over the synthetic corpus, with the parallel output checked
// byte-identical to the serial run. Module-payload codecs (wire) have a
// single item, so their numbers are flat by construction — reported
// anyway for the full picture.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "pipeline/Codec.h"
#include "pipeline/Payload.h"
#include "pipeline/Pipeline.h"

#include <cstdio>

using namespace ccomp;
using namespace ccomp::pipeline;

int main() {
  const std::string Src = bench::syntheticSource(96);
  vm::VMProgram P = bench::mustBuild(Src);
  std::unique_ptr<ir::Module> M = bench::mustCompile(Src);

  std::printf("codec compression throughput, synthetic corpus "
              "(%zu functions)\n",
              P.Functions.size());
  std::printf("%-12s %6s %10s %12s %10s %9s\n", "codec", "items", "payload",
              "compressed", "jobs", "MB/s");
  bench::hr();

  const unsigned JobCounts[] = {1, 2, 4};
  for (const auto &C : Registry::instance().all()) {
    std::vector<const Codec *> Chain = {C.get()};
    std::vector<std::vector<uint8_t>> Payloads =
        makePayloads(*C, P, M.get());
    size_t PayloadBytes = 0;
    for (const std::vector<uint8_t> &I : Payloads)
      PayloadBytes += I.size();

    std::vector<std::vector<uint8_t>> Serial =
        compressAll(Chain, Payloads, 1);
    size_t FrameBytes = 0;
    for (const std::vector<uint8_t> &F : Serial)
      FrameBytes += F.size();

    double BestMBps = 0.0;
    for (unsigned Jobs : JobCounts) {
      if (compressAll(Chain, Payloads, Jobs) != Serial)
        reportFatal(std::string("bench_throughput: ") + C->name() + " at " +
                    std::to_string(Jobs) + " jobs diverged from serial");
      double Sec = bench::timeStable(
          [&] { compressAll(Chain, Payloads, Jobs); }, 0.15);
      double MBps = PayloadBytes / Sec / 1e6;
      if (MBps > BestMBps)
        BestMBps = MBps;
      std::printf("%-12s %6zu %10zu %12zu %10u %9.2f\n", C->name(),
                  Payloads.size(), PayloadBytes, FrameBytes, Jobs, MBps);
    }
    // One machine-readable line per registered codec, so CI can assert
    // every codec — including newly registered ones — made it through
    // the parallel-identity check above.
    bench::emitStats(std::string("{\"bench\":\"throughput\",\"codec\":\"") +
                     C->name() + "\",\"items\":" +
                     std::to_string(Payloads.size()) + ",\"payload_bytes\":" +
                     std::to_string(PayloadBytes) + ",\"frame_bytes\":" +
                     std::to_string(FrameBytes) + ",\"best_mbps\":" +
                     std::to_string(BestMBps) + "}");
    bench::hr();
  }
  return 0;
}

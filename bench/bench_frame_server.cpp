//===- bench/bench_frame_server.cpp - Many-client frame-server scale -----------===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//
//
// The mobile-code delivery scenario over a *real* transport: one
// net::FrameServer serves a compressed container on loopback TCP, and
// hundreds of concurrent VM clients each dial a SocketFrameSource, load
// a CodeStore over it, and execute the stored program end-to-end. Where
// bench_remote_paging charges a virtual link, every number here is real
// wall time: kernel sockets, threads, retries and all.
//
// Acts:
//   1. scale — 256 concurrent clients against one server. The harness
//      verifies every client's output byte-identical to the eager
//      (fully decoded, no store) run, and reports throughput plus
//      p50/p95/p99 per-fault fetch latency measured at the FrameSource
//      seam. Any failure or output divergence aborts the bench.
//   2. round-trip economics — the same workload once with per-frame
//      faulting and once with one coalesced prefetch (GetBatch). The
//      server's own request counter must show the batched run using
//      STRICTLY fewer round trips; the bench aborts otherwise. This is
//      the protocol's batching claim, self-asserted on every run. A
//      third client runs under trace-driven predictive prefetch (each
//      fault warms only the predicted-next frames) and must likewise
//      beat per-frame faulting.
//
// Each act emits one machine-readable CCOMP-STATS JSON line.
//
//===----------------------------------------------------------------------===//

#include "../bench/BenchUtil.h"

#include "NetLoad.h"
#include "net/FrameServer.h"
#include "store/CodeStore.h"
#include "store/Trace.h"
#include "vm/Machine.h"

#include <cstdio>

using namespace ccomp;
using namespace ccomp::bench;

namespace {

constexpr unsigned NumFuncs = 96;
constexpr unsigned ScaleClients = 256;
const char *const Chain = "brisc+flate";

std::vector<uint8_t> buildImage(const vm::VMProgram &P) {
  store::StoreOptions Opts;
  Opts.BuildJobs = std::thread::hardware_concurrency();
  std::string Err;
  std::unique_ptr<store::CodeStore> S =
      store::CodeStore::build(P, Chain, Opts, Err);
  if (!S)
    reportFatal("bench_frame_server: build failed: " + Err);
  return S->save();
}

std::unique_ptr<net::FrameServer> startServer(const std::vector<uint8_t> &Image) {
  Result<std::unique_ptr<store::LocalFrameSource>> Src =
      store::LocalFrameSource::fromContainerBytes(Image);
  if (!Src)
    reportFatal("bench_frame_server: container: " + Src.error().message());
  Result<std::unique_ptr<net::FrameServer>> Srv =
      net::FrameServer::start(Src.take(), net::ServerOptions());
  if (!Srv)
    reportFatal("bench_frame_server: server: " + Srv.error().message());
  return Srv.take();
}

void scaleAct(net::FrameServer &Server, const std::string &ExpectedOut,
              int32_t ExpectedExit) {
  harness::LoadOptions LO;
  LO.Port = Server.port();
  LO.Clients = ScaleClients;
  harness::LoadResult R =
      harness::runSocketClients(LO, ExpectedOut, ExpectedExit);

  if (R.Failures)
    reportFatal("bench_frame_server: " + std::to_string(R.Failures) +
                " client(s) failed to run");
  if (R.OutputMismatches)
    reportFatal("bench_frame_server: " + std::to_string(R.OutputMismatches) +
                " client(s) diverged from the eager run");

  net::ServerStats SS = Server.stats();
  std::printf("scale: %u clients, %.2fs wall, %.0f clients/s, "
              "%llu fetches, p50 %.0fus p95 %.0fus p99 %.0fus\n",
              R.Clients, R.WallSeconds, R.Clients / R.WallSeconds,
              (unsigned long long)R.Fetches, R.p50() * 1e6, R.p95() * 1e6,
              R.p99() * 1e6);
  char Buf[896];
  std::snprintf(
      Buf, sizeof(Buf),
      "{\"bench\":\"frame_server\",\"act\":\"scale\",\"chain\":\"%s\","
      "\"functions\":%u,\"clients\":%u,\"failures\":%u,\"mismatches\":%u,"
      "\"wall_s\":%.4f,\"clients_per_s\":%.2f,\"fetches\":%llu,"
      "\"fetch_p50_us\":%.1f,\"fetch_p95_us\":%.1f,\"fetch_p99_us\":%.1f,"
      "\"client_round_trips\":%llu,\"dials\":%llu,\"bytes_sent\":%llu,"
      "\"bytes_received\":%llu,\"server_requests\":%llu,"
      "\"server_accepted\":%llu,\"server_frames_served\":%llu,"
      "\"server_protocol_errors\":%llu}",
      jsonEscape(Chain).c_str(), NumFuncs, R.Clients, R.Failures,
      R.OutputMismatches, R.WallSeconds, R.Clients / R.WallSeconds,
      (unsigned long long)R.Fetches, R.p50() * 1e6, R.p95() * 1e6,
      R.p99() * 1e6, (unsigned long long)R.RoundTrips,
      (unsigned long long)R.Dials, (unsigned long long)R.BytesSent,
      (unsigned long long)R.BytesReceived, (unsigned long long)SS.Requests,
      (unsigned long long)SS.Accepted, (unsigned long long)SS.FramesServed,
      (unsigned long long)SS.ProtocolErrors);
  emitStats(Buf);
}

/// One client, cache big enough that nothing re-faults: the server's
/// request counter isolates the protocol's round-trip economics.
uint64_t oneClientRequests(net::FrameServer &Server, bool PrefetchAll,
                           const pipeline::ExecutionTrace *Profile,
                           const std::string &ExpectedOut,
                           int32_t ExpectedExit,
                           harness::LoadResult &ROut) {
  uint64_t Before = Server.stats().Requests;
  harness::LoadOptions LO;
  LO.Port = Server.port();
  LO.Clients = 1;
  LO.CacheBudgetBytes = 64u << 20;
  LO.PrefetchAll = PrefetchAll;
  LO.Predictive = Profile != nullptr;
  LO.Profile = Profile;
  ROut = harness::runSocketClients(LO, ExpectedOut, ExpectedExit);
  if (ROut.Failures || ROut.OutputMismatches)
    reportFatal("bench_frame_server: economics client failed");
  return Server.stats().Requests - Before;
}

void economicsAct(net::FrameServer &Server,
                  const pipeline::ExecutionTrace &Trace,
                  const std::string &ExpectedOut, int32_t ExpectedExit) {
  harness::LoadResult PerFrame, Batched, Predictive;
  uint64_t PerFrameReqs = oneClientRequests(Server, false, nullptr,
                                            ExpectedOut, ExpectedExit,
                                            PerFrame);
  uint64_t BatchedReqs = oneClientRequests(Server, true, nullptr, ExpectedOut,
                                           ExpectedExit, Batched);
  uint64_t PredictiveReqs = oneClientRequests(Server, false, &Trace,
                                              ExpectedOut, ExpectedExit,
                                              Predictive);

  // The protocol's batching claim, self-asserted: one GetBatch carrying
  // N frames must beat N GetFrames. If coalescing ever silently stops
  // working (hint not forwarded, staging missed), this trips.
  if (BatchedReqs >= PerFrameReqs)
    reportFatal("bench_frame_server: batched prefetch used " +
                std::to_string(BatchedReqs) + " round trips, per-frame " +
                std::to_string(PerFrameReqs) +
                " — batching must be strictly cheaper");

  // Trace-driven prefetch sits between the two: each fault warms only
  // the predicted-next frames (one GetBatch per prediction wave), so it
  // must still beat faulting every frame individually.
  if (PredictiveReqs >= PerFrameReqs)
    reportFatal("bench_frame_server: predictive prefetch used " +
                std::to_string(PredictiveReqs) + " round trips, per-frame " +
                std::to_string(PerFrameReqs) +
                " — prediction must be strictly cheaper");

  std::printf("economics: per-frame %llu round trips, batched %llu "
              "(staged %llu), predictive %llu (staged %llu), "
              "batched p99 %.0fus\n",
              (unsigned long long)PerFrameReqs,
              (unsigned long long)BatchedReqs,
              (unsigned long long)Batched.StagedServes,
              (unsigned long long)PredictiveReqs,
              (unsigned long long)Predictive.StagedServes,
              Batched.p99() * 1e6);
  char Buf[768];
  std::snprintf(
      Buf, sizeof(Buf),
      "{\"bench\":\"frame_server\",\"act\":\"economics\",\"chain\":\"%s\","
      "\"functions\":%u,\"per_frame_round_trips\":%llu,"
      "\"batched_round_trips\":%llu,\"staged_serves\":%llu,"
      "\"batch_round_trips\":%llu,"
      "\"predictive_round_trips\":%llu,\"predictive_staged_serves\":%llu,"
      "\"predictive_batch_round_trips\":%llu,"
      "\"per_frame_p99_us\":%.1f,\"batched_p99_us\":%.1f}",
      jsonEscape(Chain).c_str(), NumFuncs,
      (unsigned long long)PerFrameReqs, (unsigned long long)BatchedReqs,
      (unsigned long long)Batched.StagedServes,
      (unsigned long long)Batched.BatchRoundTrips,
      (unsigned long long)PredictiveReqs,
      (unsigned long long)Predictive.StagedServes,
      (unsigned long long)Predictive.BatchRoundTrips, PerFrame.p99() * 1e6,
      Batched.p99() * 1e6);
  emitStats(Buf);
}

} // namespace

int main() {
  vm::VMProgram P = mustBuild(syntheticSource(NumFuncs));
  vm::RunResult Eager = vm::Machine(P).run();
  if (!Eager.Ok)
    reportFatal("bench_frame_server: eager reference run trapped: " +
                Eager.Trap);
  // The access trace the predictive economics client installs on its
  // store; recorded once, offline, against the same program.
  store::TraceRunResult Recorded = store::recordTrace(P);
  if (!Recorded.Run.Ok)
    reportFatal("bench_frame_server: profiling run trapped: " +
                Recorded.Run.Trap);

  std::vector<uint8_t> Image = buildImage(P);
  std::unique_ptr<net::FrameServer> Server = startServer(Image);
  std::printf("frame server on %s:%u — %u functions, %zu-byte container\n",
              Server->address().c_str(), Server->port(), NumFuncs,
              Image.size());
  hr();

  scaleAct(*Server, Eager.Output, Eager.ExitCode);
  hr();
  economicsAct(*Server, Recorded.Trace, Eager.Output, Eager.ExitCode);

  Server->stop();
  return 0;
}

//===- bench/bench_wire_table1.cpp - Section 3's wire-format table ------------===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//
//
// Reproduces the table of section 3:
//
//                    Conventional code          Wire code
//                    uncompressed   gzipped
//   icc                 315,636      75,928       64,475
//   gcc               1,381,304     380,451      287,260
//   wep                  61,036      15,936       16,013
//
// Our "conventional code" is the fixed-width VM encoding (the SPARC
// stand-in), "gzipped" is our flate over those bytes, and "wire" is the
// full pipeline (patternize, split streams, MTF, Huffman, flate). The
// shape to check: wire divides native size by 4-6x, beats gzip on the
// medium and large inputs, and may lose slightly on the smallest (the
// paper's wep row does too).
//
//===----------------------------------------------------------------------===//

#include "../bench/BenchUtil.h"

#include "flate/Flate.h"
#include "vm/Encode.h"
#include "wire/Wire.h"

using namespace ccomp;
using namespace ccomp::bench;

int main() {
  std::printf("Table 1 (section 3): wire-format sizes, bytes\n");
  std::printf("(conventional = fixed-width VM encoding, the SPARC-class "
              "baseline)\n\n");
  std::printf("%-6s %14s %12s %12s %9s %9s\n", "input", "uncompressed",
              "gzipped", "wire", "vs raw", "vs gzip");
  hr();
  for (const char *Cls : {"icc", "gcc", "wep"}) {
    std::string Src = corpus::sizeClassSource(Cls);
    std::unique_ptr<ir::Module> M = mustCompile(Src);
    vm::VMProgram P = mustBuild(Src);

    size_t Native = vm::encodeProgram(P).size();
    size_t Gz = flate::compress(vm::encodeProgram(P)).size();
    wire::Stats S;
    size_t Wire = wire::compress(*M, wire::Pipeline::Full, &S).size();

    std::printf("%-6s %14zu %12zu %12zu %8.2fx %8.2fx\n", Cls, Native, Gz,
                Wire, double(Native) / double(Wire),
                double(Gz) / double(Wire));
  }
  hr();
  std::printf("paper: icc 315636/75928/64475, gcc 1381304/380451/287260 "
              "(4.8x), wep 61036/15936/16013 (wire loses slightly)\n");
  return 0;
}

//===- bench/bench_dictionary.cpp - Dictionary statistics (section 4) ----------===//
//
// Part of the ccomp project (PLDI'97 "Code Compression" reproduction).
//
//===----------------------------------------------------------------------===//
//
// Reproduces the in-text dictionary statistics of section 4: candidate
// counts ("the total number of candidates tested in compressing
// gcc-2.6.3 is 93,211"), final dictionary sizes ("981 instruction
// patterns" for icc, "1232" for gcc), successor-table bounds ("at most
// 244 instruction patterns can follow"), and a K sweep showing the
// greedy trade-off.
//
//===----------------------------------------------------------------------===//

#include "../bench/BenchUtil.h"

#include "brisc/Brisc.h"
#include "vm/Encode.h"

using namespace ccomp;
using namespace ccomp::bench;

int main() {
  std::printf("Dictionary construction statistics\n\n");
  std::printf("%-6s %12s %10s %8s %10s %10s %12s\n", "input",
              "candidates", "patterns", "passes", "max succ",
              "image B", "bytes/instr");
  hr();
  for (const char *Cls : {"wep", "icc"}) {
    vm::VMProgram P = mustBuild(corpus::sizeClassSource(Cls));
    brisc::CompressStats S;
    brisc::BriscProgram B = brisc::compress(P, brisc::CompressOptions(),
                                            &S);
    size_t MaxSucc = 0;
    for (const auto &L : B.Successors)
      MaxSucc = std::max(MaxSucc, L.size());
    uint64_t Instrs = vm::countInstrs(P);
    std::printf("%-6s %12zu %10zu %8u %10zu %10zu %12.2f\n", Cls,
                S.CandidatesTested, S.DictPatterns, S.Passes, MaxSucc,
                S.TotalBytes, double(S.CodeBytes) / double(Instrs));
  }
  hr();
  std::printf("paper: icc dictionary 981 patterns; gcc 1232 patterns, "
              "93211 candidates; <=244 successors\n\n");

  // K sweep on the wep class (K is the per-pass adoption budget).
  std::printf("K sweep (wep class, AutoK off):\n");
  std::printf("%6s %10s %8s %12s\n", "K", "patterns", "passes", "bytes");
  hr();
  vm::VMProgram P = mustBuild(corpus::sizeClassSource("wep"));
  for (unsigned K : {5u, 10u, 20u, 40u, 80u}) {
    brisc::CompressOptions Opts;
    Opts.K = K;
    Opts.AutoK = false;
    brisc::CompressStats S;
    brisc::compress(P, Opts, &S);
    std::printf("%6u %10zu %8u %12zu\n", K, S.DictPatterns, S.Passes,
                S.TotalBytes);
  }
  hr();
  return 0;
}
